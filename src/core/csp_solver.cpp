#include "core/csp_solver.hpp"

#include <algorithm>
#include <map>

#include "core/rules.hpp"
#include "dfg/analysis.hpp"
#include "util/timer.hpp"

namespace ht::core {
namespace {

struct CopyMeta {
  CopyKind kind;
  dfg::OpId op;
  int cls;      // resource class index
  int phase;    // 0 = detection, 1 = recovery
  int latency;  // cycles the op occupies its instance
};

class Search {
 public:
  Search(const ProblemSpec& spec, const Palettes& palettes,
         const CspOptions& options)
      : spec_(spec), options_(options) {
    util::check_spec(
        spec.catalog.num_vendors() <= kMaxVendors,
        "csp: catalog exceeds kMaxVendors (see core/problem.hpp)");
    build_copies();
    build_windows();
    build_conflicts();
    build_palette_masks(palettes);
    const int v = spec.catalog.num_vendors();
    forbid_count_.assign(copies_.size() * static_cast<std::size_t>(v), 0);
    assigned_cycle_.assign(copies_.size(), -1);
    assigned_vendor_.assign(copies_.size(), -1);
    allowed_mask_.resize(copies_.size());
    unassigned_pos_.resize(copies_.size());
    for (std::size_t c = 0; c < copies_.size(); ++c) {
      allowed_mask_[c] =
          palette_mask_[static_cast<std::size_t>(copies_[c].cls)];
      unassigned_pos_[c] = static_cast<int>(c);
      unassigned_.push_back(static_cast<int>(c));
    }
    const std::size_t usage_size =
        2ull * static_cast<std::size_t>(v) * dfg::kNumResourceClasses *
        static_cast<std::size_t>(max_lambda_);
    usage_.assign(usage_size, 0);
    peak_.assign(static_cast<std::size_t>(v) * dfg::kNumResourceClasses, 0);
  }

  CspResult run() {
    CspResult result;
    timer_.reset();
    // Static infeasibility: a copy with an empty window or empty palette.
    for (std::size_t c = 0; c < copies_.size(); ++c) {
      if (est_[c] > lst_[c] ||
          palette_mask_[static_cast<std::size_t>(copies_[c].cls)] == 0) {
        result.status = CspResult::Status::kInfeasible;
        return result;
      }
    }
    const Outcome outcome = dfs(0);
    result.nodes = nodes_;
    switch (outcome) {
      case Outcome::kSolved:
        result.status = CspResult::Status::kFeasible;
        result.solution = extract_solution();
        break;
      case Outcome::kExhausted:
        result.status = CspResult::Status::kInfeasible;
        break;
      case Outcome::kNodeLimit:
        result.status = CspResult::Status::kNodeLimit;
        break;
      case Outcome::kTimeout:
        result.status = CspResult::Status::kTimeout;
        break;
      case Outcome::kCancelled:
        result.status = CspResult::Status::kCancelled;
        break;
    }
    return result;
  }

 private:
  enum class Outcome { kSolved, kExhausted, kNodeLimit, kTimeout, kCancelled };

  // ---- model construction ---------------------------------------------
  void build_copies() {
    const int n = spec_.graph.num_ops();
    std::vector<CopyKind> kinds = {CopyKind::kNormal, CopyKind::kRedundant};
    if (spec_.with_recovery) kinds.push_back(CopyKind::kRecovery);
    for (CopyKind kind : kinds) {
      for (dfg::OpId op = 0; op < n; ++op) {
        const int cls = static_cast<int>(
            dfg::resource_class_of(spec_.graph.op(op).type));
        const int phase = kind == CopyKind::kRecovery ? 1 : 0;
        copy_of_[{kind, op}] = static_cast<int>(copies_.size());
        copies_.push_back(
            CopyMeta{kind, op, cls, phase, spec_.op_latency(op)});
      }
    }
    max_lambda_ = std::max(spec_.lambda_detection,
                           spec_.with_recovery ? spec_.lambda_recovery : 0);
  }

  void build_windows() {
    const std::vector<int> latencies = spec_.op_latencies();
    const std::vector<int> asap = dfg::asap_levels(spec_.graph, latencies);
    const std::vector<int> alap_det =
        dfg::alap_levels(spec_.graph, spec_.lambda_detection, latencies);
    std::vector<int> alap_rec;
    if (spec_.with_recovery) {
      alap_rec =
          dfg::alap_levels(spec_.graph, spec_.lambda_recovery, latencies);
    }
    est_.resize(copies_.size());
    lst_.resize(copies_.size());
    for (std::size_t c = 0; c < copies_.size(); ++c) {
      const CopyMeta& meta = copies_[c];
      est_[c] = asap[static_cast<std::size_t>(meta.op)];
      lst_[c] = meta.phase == 0
                    ? alap_det[static_cast<std::size_t>(meta.op)]
                    : alap_rec[static_cast<std::size_t>(meta.op)];
    }
    // Same-schedule dependence neighbors.
    parents_.resize(copies_.size());
    children_.resize(copies_.size());
    for (std::size_t c = 0; c < copies_.size(); ++c) {
      const CopyMeta& meta = copies_[c];
      for (dfg::OpId parent : spec_.graph.parents(meta.op)) {
        parents_[c].push_back(copy_of_.at({meta.kind, parent}));
      }
      for (dfg::OpId child : spec_.graph.children(meta.op)) {
        children_[c].push_back(copy_of_.at({meta.kind, child}));
      }
    }
  }

  void build_conflicts() {
    neighbors_.resize(copies_.size());
    for (const VendorConflict& conflict : vendor_conflicts(spec_)) {
      const int a = copy_of_.at(conflict.a);
      const int b = copy_of_.at(conflict.b);
      neighbors_[static_cast<std::size_t>(a)].push_back(b);
      neighbors_[static_cast<std::size_t>(b)].push_back(a);
    }
    degree_.resize(copies_.size());
    for (std::size_t c = 0; c < copies_.size(); ++c) {
      degree_[c] = static_cast<int>(neighbors_[c].size() +
                                    parents_[c].size() + children_[c].size());
    }
  }

  void build_palette_masks(const Palettes& palettes) {
    for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
      std::uint64_t mask = 0;
      for (vendor::VendorId v : palettes[static_cast<std::size_t>(cls)]) {
        util::check_spec(
            spec_.catalog.offers(v, static_cast<dfg::ResourceClass>(cls)),
            "csp: palette vendor does not offer the class");
        mask |= 1ull << v;
      }
      palette_mask_[static_cast<std::size_t>(cls)] = mask;
      for (vendor::VendorId v = 0; v < spec_.catalog.num_vendors(); ++v) {
        if (mask & (1ull << v)) {
          offer_area_[static_cast<std::size_t>(cls)][static_cast<std::size_t>(
              v)] =
              spec_.catalog.offer(v, static_cast<dfg::ResourceClass>(cls))
                  .area;
        }
      }
    }
  }

  // ---- state access -----------------------------------------------------
  int& usage(int phase, int v, int cls, int cycle) {
    return usage_[((static_cast<std::size_t>(phase) *
                        static_cast<std::size_t>(spec_.catalog.num_vendors()) +
                    static_cast<std::size_t>(v)) *
                       dfg::kNumResourceClasses +
                   static_cast<std::size_t>(cls)) *
                      static_cast<std::size_t>(max_lambda_) +
                  static_cast<std::size_t>(cycle - 1)];
  }
  int& peak(int v, int cls) {
    return peak_[static_cast<std::size_t>(v) * dfg::kNumResourceClasses +
                 static_cast<std::size_t>(cls)];
  }
  int& forbid_count(int copy, int v) {
    return forbid_count_[static_cast<std::size_t>(copy) *
                             static_cast<std::size_t>(
                                 spec_.catalog.num_vendors()) +
                         static_cast<std::size_t>(v)];
  }

  // ---- trail / undo -----------------------------------------------------
  void record(int* slot) { trail_.emplace_back(slot, *slot); }
  void record_ll(long long* slot) { trail_ll_.emplace_back(slot, *slot); }
  void record_u64(std::uint64_t* slot) {
    trail_u64_.emplace_back(slot, *slot);
  }

  struct Mark {
    std::size_t trail;
    std::size_t trail_ll;
    std::size_t trail_u64;
  };
  Mark mark() const {
    return {trail_.size(), trail_ll_.size(), trail_u64_.size()};
  }
  void rewind(Mark m) {
    while (trail_.size() > m.trail) {
      auto [slot, old] = trail_.back();
      trail_.pop_back();
      *slot = old;
    }
    while (trail_ll_.size() > m.trail_ll) {
      auto [slot, old] = trail_ll_.back();
      trail_ll_.pop_back();
      *slot = old;
    }
    while (trail_u64_.size() > m.trail_u64) {
      auto [slot, old] = trail_u64_.back();
      trail_u64_.pop_back();
      *slot = old;
    }
  }

  // ---- assignment -------------------------------------------------------
  /// Applies copy := (cycle, vendor). Returns false on an immediate
  /// dead end (caller must rewind to its mark).
  bool assign(int copy, int cycle, int v) {
    const CopyMeta& meta = copies_[static_cast<std::size_t>(copy)];
    record(&assigned_cycle_[static_cast<std::size_t>(copy)]);
    record(&assigned_vendor_[static_cast<std::size_t>(copy)]);
    assigned_cycle_[static_cast<std::size_t>(copy)] = cycle;
    assigned_vendor_[static_cast<std::size_t>(copy)] = v;

    // Resource usage / peak / area, over the whole occupancy interval.
    for (int busy = cycle; busy < cycle + meta.latency; ++busy) {
      int& use = usage(meta.phase, v, meta.cls, busy);
      record(&use);
      ++use;
      int& pk = peak(v, meta.cls);
      if (use > pk) {
        if (use >
            spec_.instance_cap(static_cast<dfg::ResourceClass>(meta.cls))) {
          return false;
        }
        record(&pk);
        pk = use;
        record_ll(&area_committed_);
        area_committed_ +=
            offer_area_[static_cast<std::size_t>(meta.cls)]
                       [static_cast<std::size_t>(v)];
        if (area_committed_ > spec_.area_limit) return false;
      }
    }

    // Vendor-diversity propagation. The per-copy allowed mask is maintained
    // incrementally: it loses bit v exactly when the forbid count for
    // (copy, v) transitions 0 -> 1, and the trail restores it on rewind —
    // no O(vendors) rescan per propagation or per select/enumerate.
    for (int nb : neighbors_[static_cast<std::size_t>(copy)]) {
      if (assigned_vendor_[static_cast<std::size_t>(nb)] == v) return false;
      if (assigned_vendor_[static_cast<std::size_t>(nb)] >= 0) continue;
      int& count = forbid_count(nb, v);
      record(&count);
      ++count;
      if (count == 1) {
        std::uint64_t& mask = allowed_mask_[static_cast<std::size_t>(nb)];
        record_u64(&mask);
        mask &= ~(1ull << v);
        if (mask == 0) return false;
      }
    }

    // Dependence window propagation within the same schedule: children may
    // start once this op finishes; parents must have finished before this
    // op starts.
    for (int child : children_[static_cast<std::size_t>(copy)]) {
      if (est_[static_cast<std::size_t>(child)] < cycle + meta.latency) {
        record(&est_[static_cast<std::size_t>(child)]);
        est_[static_cast<std::size_t>(child)] = cycle + meta.latency;
        if (est_[static_cast<std::size_t>(child)] >
            lst_[static_cast<std::size_t>(child)]) {
          return false;
        }
      }
    }
    for (int parent : parents_[static_cast<std::size_t>(copy)]) {
      const int parent_latency =
          copies_[static_cast<std::size_t>(parent)].latency;
      if (lst_[static_cast<std::size_t>(parent)] > cycle - parent_latency) {
        record(&lst_[static_cast<std::size_t>(parent)]);
        lst_[static_cast<std::size_t>(parent)] = cycle - parent_latency;
        if (est_[static_cast<std::size_t>(parent)] >
            lst_[static_cast<std::size_t>(parent)]) {
          return false;
        }
      }
    }
    return true;
  }

  // ---- search -----------------------------------------------------------
  // Only unassigned copies live in unassigned_ (swap-remove on descent,
  // exact inverse on backtrack), so variable selection never rescans
  // assigned copies. The comparator is order-independent — (score asc,
  // degree desc, copy id asc) — and reproduces the historical first-seen
  // tie-breaking of the ascending full scan exactly.
  int select_variable() const {
    int best = -1;
    long best_score = 0;
    for (int c : unassigned_) {
      const std::size_t cs = static_cast<std::size_t>(c);
      const long window = lst_[cs] - est_[cs] + 1;
      const long vendors =
          static_cast<long>(__builtin_popcountll(allowed_mask_[cs]));
      const long score = window * vendors;
      if (best < 0 || score < best_score ||
          (score == best_score &&
           (degree_[cs] > degree_[static_cast<std::size_t>(best)] ||
            (degree_[cs] == degree_[static_cast<std::size_t>(best)] &&
             c < best)))) {
        best = c;
        best_score = score;
      }
    }
    return best;
  }

  void remove_unassigned(int copy) {
    const std::size_t pos =
        static_cast<std::size_t>(unassigned_pos_[static_cast<std::size_t>(
            copy)]);
    const int moved = unassigned_.back();
    unassigned_[pos] = moved;
    unassigned_pos_[static_cast<std::size_t>(moved)] = static_cast<int>(pos);
    unassigned_.pop_back();
  }

  // Exact inverse of remove_unassigned under the search's LIFO discipline:
  // unassigned_pos_[copy] still names the slot it vacated.
  void restore_unassigned(int copy) {
    const std::size_t pos =
        static_cast<std::size_t>(unassigned_pos_[static_cast<std::size_t>(
            copy)]);
    if (pos == unassigned_.size()) {
      unassigned_.push_back(copy);
      return;
    }
    const int moved = unassigned_[pos];
    unassigned_.push_back(moved);
    unassigned_pos_[static_cast<std::size_t>(moved)] =
        static_cast<int>(unassigned_.size()) - 1;
    unassigned_[pos] = copy;
  }

  struct Value {
    long long area_delta;
    int cycle;
    int vendor;
  };

  // Values ordered by (area_delta, cycle, vendor): no added area first, then
  // earlier cycles, then lower vendor ids. The historical packed key
  // `area_delta * 1000 + cycle * 8 + v` aliased vendor into the cycle field
  // once v >= 8, and its randomized tiebreak only ever acted on those
  // aliased collisions — on every catalog in this repo (<= 8 vendors) the
  // packed keys were unique, so this tuple order is behavior-identical and
  // the per-node RNG draw was dead weight. Scratch vectors are pooled per
  // depth to avoid a heap allocation per search node.
  const std::vector<Value>& enumerate_values(int copy, std::size_t depth) {
    if (depth >= value_pool_.size()) value_pool_.resize(depth + 1);
    std::vector<Value>& values = value_pool_[depth];
    values.clear();
    const CopyMeta& meta = copies_[static_cast<std::size_t>(copy)];
    const std::uint64_t allowed =
        allowed_mask_[static_cast<std::size_t>(copy)];
    const int cap =
        spec_.instance_cap(static_cast<dfg::ResourceClass>(meta.cls));
    for (int cycle = est_[static_cast<std::size_t>(copy)];
         cycle <= lst_[static_cast<std::size_t>(copy)]; ++cycle) {
      for (std::uint64_t bits = allowed; bits != 0; bits &= bits - 1) {
        const int v = __builtin_ctzll(bits);
        int needed = 0;  // instances required over the occupancy interval
        for (int busy = cycle; busy < cycle + meta.latency; ++busy) {
          needed = std::max(needed, usage(meta.phase, v, meta.cls, busy) + 1);
        }
        const int pk = peak_[static_cast<std::size_t>(v) *
                                 dfg::kNumResourceClasses +
                             static_cast<std::size_t>(meta.cls)];
        long long area_delta = 0;
        if (needed > pk) {
          if (needed > cap) continue;
          area_delta = static_cast<long long>(needed - pk) *
                       offer_area_[static_cast<std::size_t>(meta.cls)]
                                  [static_cast<std::size_t>(v)];
          if (area_committed_ + area_delta > spec_.area_limit) continue;
        }
        values.push_back(Value{area_delta, cycle, v});
      }
    }
    std::sort(values.begin(), values.end(),
              [](const Value& a, const Value& b) {
                if (a.area_delta != b.area_delta) {
                  return a.area_delta < b.area_delta;
                }
                if (a.cycle != b.cycle) return a.cycle < b.cycle;
                return a.vendor < b.vendor;
              });
    return values;
  }

  Outcome dfs(std::size_t depth) {
    if (++nodes_ > options_.max_nodes) return Outcome::kNodeLimit;
    if ((nodes_ & 0x3ff) == 0) {
      if (options_.cancel && options_.cancel->cancelled()) {
        return Outcome::kCancelled;
      }
      if (timer_.elapsed_seconds() > options_.time_limit_seconds) {
        return Outcome::kTimeout;
      }
    }
    const int copy = select_variable();
    if (copy < 0) return Outcome::kSolved;  // everything assigned
    remove_unassigned(copy);

    for (const Value& value : enumerate_values(copy, depth)) {
      const Mark m = mark();
      if (assign(copy, value.cycle, value.vendor)) {
        const Outcome outcome = dfs(depth + 1);
        if (outcome != Outcome::kExhausted) return outcome;
      }
      rewind(m);
    }
    restore_unassigned(copy);
    return Outcome::kExhausted;
  }

  Solution extract_solution() {
    Solution solution(spec_.graph.num_ops(), spec_.with_recovery);
    // Instances of one offer are interchangeable; pack the (possibly
    // multi-cycle) occupancy intervals per (phase, vendor, class) onto
    // instance indices with greedy interval scheduling — the instance
    // count realized equals the peak tracked during search.
    std::map<std::tuple<int, int, int>, std::vector<std::size_t>> groups;
    for (std::size_t c = 0; c < copies_.size(); ++c) {
      util::check_internal(assigned_cycle_[c] >= 1 && assigned_vendor_[c] >= 0,
                           "csp: extracting incomplete assignment");
      groups[{copies_[c].phase, assigned_vendor_[c], copies_[c].cls}]
          .push_back(c);
    }
    for (auto& [key, group] : groups) {
      (void)key;
      std::sort(group.begin(), group.end(),
                [&](std::size_t a, std::size_t b) {
                  return assigned_cycle_[a] < assigned_cycle_[b];
                });
      std::vector<int> instance_free_at;
      for (std::size_t c : group) {
        const CopyMeta& meta = copies_[c];
        const int start = assigned_cycle_[c];
        const int finish = start + meta.latency;
        int chosen = -1;
        for (std::size_t i = 0; i < instance_free_at.size(); ++i) {
          if (instance_free_at[i] <= start) {
            chosen = static_cast<int>(i);
            break;
          }
        }
        if (chosen < 0) {
          chosen = static_cast<int>(instance_free_at.size());
          instance_free_at.push_back(0);
        }
        instance_free_at[static_cast<std::size_t>(chosen)] = finish;
        solution.at(meta.kind, meta.op) =
            Binding{start, assigned_vendor_[c], chosen};
      }
    }
    return solution;
  }

  const ProblemSpec& spec_;
  const CspOptions& options_;
  util::Timer timer_;

  std::vector<CopyMeta> copies_;
  std::map<CopyRef, int> copy_of_;
  int max_lambda_ = 0;

  std::vector<int> est_, lst_;
  std::vector<std::vector<int>> parents_, children_;  // same-schedule deps
  std::vector<std::vector<int>> neighbors_;           // vendor conflicts
  std::vector<int> degree_;
  std::array<std::uint64_t, dfg::kNumResourceClasses> palette_mask_{};
  std::array<std::array<long long, kMaxVendors>, dfg::kNumResourceClasses>
      offer_area_{};

  std::vector<int> forbid_count_;
  std::vector<std::uint64_t> allowed_mask_;  // palette minus forbidden, live
  std::vector<int> assigned_cycle_, assigned_vendor_;
  std::vector<int> unassigned_;      // swap-remove list for select_variable
  std::vector<int> unassigned_pos_;  // copy -> slot in unassigned_
  std::vector<int> usage_;
  std::vector<int> peak_;
  long long area_committed_ = 0;

  std::vector<std::pair<int*, int>> trail_;
  std::vector<std::pair<long long*, long long>> trail_ll_;
  std::vector<std::pair<std::uint64_t*, std::uint64_t>> trail_u64_;
  std::vector<std::vector<Value>> value_pool_;  // per-depth scratch
  long nodes_ = 0;
};

}  // namespace

CspResult schedule_and_bind(const ProblemSpec& spec, const Palettes& palettes,
                            const CspOptions& options) {
  spec.validate();
  Search search(spec, palettes, options);
  return search.run();
}

}  // namespace ht::core
