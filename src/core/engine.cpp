#include "core/engine.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <optional>
#include <utility>

#include "core/greedy.hpp"
#include "core/palette.hpp"
#include "core/reoptimize.hpp"
#include "core/rules.hpp"
#include "dfg/analysis.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace ht::core {
namespace {

/// Complete (proof-preserving) area precheck for one license set: every
/// class needs enough core instances for its densest phase, and each
/// instance costs at least the smallest area in the class palette.
bool area_lower_bound_exceeds(const ProblemSpec& spec,
                              const Palettes& palettes) {
  const auto op_counts = spec.graph.ops_per_class();
  long long area_lb = 0;
  for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    if (op_counts[cls] == 0) continue;
    const auto rc = static_cast<dfg::ResourceClass>(cls);
    // Instance-cycle demand: each op occupies its instance for the class
    // latency.
    const int lat = spec.class_latency[static_cast<std::size_t>(cls)];
    int needed = (2 * op_counts[cls] * lat + spec.lambda_detection - 1) /
                 spec.lambda_detection;
    if (spec.with_recovery) {
      needed = std::max(needed,
                        (op_counts[cls] * lat + spec.lambda_recovery - 1) /
                            spec.lambda_recovery);
    }
    long long min_area = 0;
    for (vendor::VendorId v : palettes[static_cast<std::size_t>(cls)]) {
      const long long area = spec.catalog.offer(v, rc).area;
      if (min_area == 0 || area < min_area) min_area = area;
    }
    area_lb += static_cast<long long>(needed) * min_area;
  }
  return area_lb > spec.area_limit;
}

/// Result of evaluating one license set. Everything here is a pure
/// function of (spec, palettes, index, request budgets and seed) — the
/// bedrock of the N-thread == 1-thread determinism guarantee — except when
/// a wall-clock or cancellation stop truncates an evaluation.
struct ComboOutcome {
  bool feasible = false;
  /// Budget/time/cancel truncation: the set is neither proven feasible nor
  /// proven infeasible, so optimality claims must account for it.
  bool inconclusive = false;
  Solution solution;
  long csp_nodes = 0;
};

ComboOutcome evaluate_combo(const ProblemSpec& spec, const Palettes& palettes,
                            long index, const SynthesisRequest& request,
                            double remaining_seconds) {
  ComboOutcome out;
  // Cheap primal attempts first: a greedy success avoids any search for
  // this license set (feasibility is feasibility). Seeded by the set's
  // palette index so results do not depend on evaluation order.
  const std::uint64_t salt = request.strategy == Strategy::kExact
                                 ? request.seed
                                 : request.seed * 0x9e3779b9ull;
  util::Rng greedy_rng(salt + static_cast<std::uint64_t>(index) + 1);
  for (int attempt = 0; attempt < 4 * request.limits.heuristic_restarts;
       ++attempt) {
    if (request.cancel && request.cancel->cancelled()) {
      out.inconclusive = true;
      return out;
    }
    const std::optional<Solution> constructed =
        greedy_construct(spec, palettes, greedy_rng);
    if (constructed) {
      out.feasible = true;
      out.solution = *constructed;
      return out;
    }
  }

  if (request.strategy == Strategy::kExact) {
    CspOptions csp_options;
    csp_options.max_nodes = request.limits.csp_node_limit;
    csp_options.time_limit_seconds = std::max(0.1, remaining_seconds);
    csp_options.seed = 0;
    csp_options.cancel = request.cancel;
    const CspResult csp = schedule_and_bind(spec, palettes, csp_options);
    out.csp_nodes += csp.nodes;
    if (csp.status == CspResult::Status::kFeasible) {
      out.feasible = true;
      out.solution = csp.solution;
    } else {
      out.inconclusive = csp.status != CspResult::Status::kInfeasible;
    }
    return out;
  }

  // Heuristic: budgeted CSP restarts; an infeasibility proof from any
  // restart is still a proof (the search is complete, just capped).
  for (int restart = 0; restart < request.limits.heuristic_restarts;
       ++restart) {
    if (request.cancel && request.cancel->cancelled()) {
      out.inconclusive = true;
      return out;
    }
    CspOptions csp_options;
    csp_options.max_nodes = request.limits.heuristic_node_limit;
    csp_options.time_limit_seconds = std::max(0.1, remaining_seconds);
    csp_options.seed = request.seed + static_cast<std::uint64_t>(restart);
    csp_options.cancel = request.cancel;
    const CspResult attempt = schedule_and_bind(spec, palettes, csp_options);
    out.csp_nodes += attempt.nodes;
    if (attempt.status == CspResult::Status::kFeasible) {
      out.feasible = true;
      out.solution = attempt.solution;
      out.inconclusive = false;
      return out;
    }
    if (attempt.status == CspResult::Status::kInfeasible) {
      out.inconclusive = false;
      return out;
    }
    out.inconclusive = true;
  }
  return out;
}

/// Everything the workers share, guarded by one mutex (license-set
/// evaluation dominates; the critical sections are microseconds).
struct SharedSearch {
  explicit SharedSearch(ComboQueue combo_queue)
      : queue(std::move(combo_queue)) {}

  std::mutex mutex;
  ComboQueue queue;
  long evaluated_dispatched = 0;
  bool stop = false;
  bool cancelled = false;
  bool timed_out = false;

  bool have_incumbent = false;
  long long best_cost = 0;
  long best_index = -1;
  Solution best_solution;
  /// Cheapest license-set cost whose evaluation was truncated; the
  /// optimality proof must clear it.
  long long cheapest_inconclusive = -1;
  OptimizeStats stats;
  std::exception_ptr failure;
};

/// One search lane. Pulls license sets off the shared cheapest-first queue
/// (assigning each evaluated set its palette index), evaluates them
/// outside the lock, and commits under the lock with the deterministic
/// rule: winner = lowest (license cost, palette index).
void search_worker(SharedSearch& shared, const SynthesisRequest& request,
                   const ProblemSpec& spec, const util::Timer& timer,
                   std::mutex& progress_mutex) {
  try {
    Palettes palettes;
    for (;;) {
      long index = -1;
      long long combo_cost = 0;
      double remaining = 0.0;
      {
        std::lock_guard<std::mutex> lock(shared.mutex);
        for (;;) {
          if (shared.stop) return;
          if (request.cancel && request.cancel->cancelled()) {
            shared.stop = true;
            shared.cancelled = true;
            return;
          }
          remaining =
              request.limits.time_limit_seconds - timer.elapsed_seconds();
          if (remaining <= 0.0) {
            shared.stop = true;
            shared.timed_out = true;
            return;
          }
          if (shared.evaluated_dispatched >= request.limits.max_combos) {
            shared.stop = true;
            return;
          }
          long long next_cost = 0;
          if (!shared.queue.peek(next_cost)) {
            shared.stop = true;
            return;
          }
          if (shared.have_incumbent && next_cost >= shared.best_cost) {
            // Every remaining set costs at least as much as the incumbent.
            shared.stop = true;
            return;
          }
          shared.queue.next(palettes, combo_cost);
          if (area_lower_bound_exceeds(spec, palettes)) {
            ++shared.stats.combos_skipped_by_bound;
            continue;  // complete proof, not an unknown
          }
          index = shared.evaluated_dispatched++;
          ++shared.stats.combos_tried;
          break;
        }
      }

      const ComboOutcome outcome =
          evaluate_combo(spec, palettes, index, request, remaining);

      {
        std::lock_guard<std::mutex> lock(shared.mutex);
        shared.stats.csp_nodes += outcome.csp_nodes;
        if (outcome.feasible) {
          require_valid(spec, outcome.solution);
          const long long cost = outcome.solution.license_cost(spec);
          if (!shared.have_incumbent || cost < shared.best_cost ||
              (cost == shared.best_cost && index < shared.best_index)) {
            shared.have_incumbent = true;
            shared.best_cost = cost;
            shared.best_index = index;
            shared.best_solution = outcome.solution;
            util::log_debug("engine: incumbent $" + std::to_string(cost) +
                            " (license set #" + std::to_string(index) +
                            ") after " +
                            std::to_string(shared.stats.combos_tried) +
                            " license sets");
          }
        } else if (outcome.inconclusive) {
          ++shared.stats.unknown_combos;
          if (shared.cheapest_inconclusive < 0 ||
              combo_cost < shared.cheapest_inconclusive) {
            shared.cheapest_inconclusive = combo_cost;
          }
        }
        if (request.progress) {
          SynthesisProgress progress;
          progress.combos_tried = shared.stats.combos_tried;
          progress.csp_nodes = shared.stats.csp_nodes;
          progress.have_incumbent = shared.have_incumbent;
          progress.incumbent_cost = shared.best_cost;
          progress.seconds = timer.elapsed_seconds();
          std::lock_guard<std::mutex> progress_lock(progress_mutex);
          request.progress(progress);
        }
      }
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(shared.mutex);
    if (!shared.failure) shared.failure = std::current_exception();
    shared.stop = true;
  }
}

/// Runs fn(i, inner_threads) for i in [0, n) across `threads` compute
/// lanes: min(threads, n) outer lanes, the rest of the budget handed down
/// to each call. Exceptions from any lane are rethrown (first one wins).
void run_indexed(std::size_t n, int threads,
                 const std::function<void(std::size_t, int)>& fn) {
  const int outer =
      std::max(1, std::min(threads, static_cast<int>(n == 0 ? 1 : n)));
  const int inner = std::max(1, threads / outer);
  if (outer == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i, inner);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::mutex failure_mutex;
  std::exception_ptr failure;
  auto lane = [&] {
    try {
      for (std::size_t i;
           (i = next.fetch_add(1, std::memory_order_relaxed)) < n;) {
        fn(i, inner);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(failure_mutex);
      if (!failure) failure = std::current_exception();
    }
  };
  {
    util::ThreadPool pool(outer - 1);
    util::TaskGroup group(pool);
    for (int t = 0; t < outer - 1; ++t) group.run(lane);
    lane();  // the calling thread is a lane too
    group.wait();
  }
  if (failure) std::rethrow_exception(failure);
}

}  // namespace

SynthesisEngine::SynthesisEngine(SynthesisRequest request)
    : request_(std::move(request)) {}

OptimizeResult SynthesisEngine::minimize() {
  return minimize_spec(request_.spec, request_.parallelism.resolved_threads());
}

OptimizeResult SynthesisEngine::minimize_spec(const ProblemSpec& spec,
                                              int threads) {
  spec.validate();
  util::Timer timer;
  OptimizeResult result;

  // Latency bounds below the (weighted) critical path are a proof of
  // infeasibility.
  try {
    const std::vector<int> latencies = spec.op_latencies();
    (void)dfg::alap_levels(spec.graph, spec.lambda_detection, latencies);
    if (spec.with_recovery) {
      (void)dfg::alap_levels(spec.graph, spec.lambda_recovery, latencies);
    }
  } catch (const util::InfeasibleError&) {
    result.status = OptStatus::kInfeasible;
    result.stats.seconds = timer.elapsed_seconds();
    return result;
  }

  const auto min_sizes = min_vendors_per_class(spec);
  // A class whose conflict clique needs more vendors than the market
  // offers is a proof of infeasibility (e.g. recovery on a 2-vendor
  // market: the NC/RC/recovery triangle needs 3).
  for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    const auto rc = static_cast<dfg::ResourceClass>(cls);
    if (spec.graph.ops_per_class()[cls] == 0) continue;
    if (spec.catalog.num_vendors_offering(rc) < min_sizes[cls]) {
      result.status = OptStatus::kInfeasible;
      result.stats.seconds = timer.elapsed_seconds();
      return result;
    }
  }

  SharedSearch shared(ComboQueue(enumerate_palettes(spec, min_sizes)));
  const int lanes = std::max(1, threads);
  if (lanes == 1) {
    search_worker(shared, request_, spec, timer, progress_mutex_);
  } else {
    util::ThreadPool pool(lanes - 1);
    util::TaskGroup group(pool);
    for (int t = 0; t < lanes - 1; ++t) {
      group.run([&] {
        search_worker(shared, request_, spec, timer, progress_mutex_);
      });
    }
    search_worker(shared, request_, spec, timer, progress_mutex_);
    group.wait();
  }
  if (shared.failure) std::rethrow_exception(shared.failure);

  result.stats = shared.stats;
  result.stats.seconds = timer.elapsed_seconds();
  long long next_cost = 0;
  const bool queue_drained = !shared.queue.peek(next_cost);
  if (shared.have_incumbent) {
    result.solution = shared.best_solution;
    result.cost = shared.best_cost;
    // Optimal iff every cheaper license set is disproven: nothing cheaper
    // is left undispatched and no truncated evaluation was cheaper.
    const bool no_cheaper_left =
        queue_drained || next_cost >= shared.best_cost;
    const bool proven = no_cheaper_left &&
                        (shared.cheapest_inconclusive < 0 ||
                         shared.cheapest_inconclusive >= shared.best_cost);
    result.status = proven ? OptStatus::kOptimal : OptStatus::kFeasible;
  } else if (queue_drained && shared.stats.unknown_combos == 0) {
    result.status = OptStatus::kInfeasible;
  } else {
    result.status = OptStatus::kUnknown;
  }
  util::log_debug("engine: " + to_string(result.status) + " on '" +
                  spec.graph.name() + "' after " +
                  std::to_string(result.stats.combos_tried) +
                  " license sets, " +
                  std::to_string(result.stats.csp_nodes) + " CSP nodes, " +
                  util::format_double(result.stats.seconds, 3) + "s (" +
                  std::to_string(lanes) + " thread" +
                  (lanes == 1 ? "" : "s") + ")");
  return result;
}

SplitResult SynthesisEngine::minimize_total_latency(int lambda_total) {
  return split_minimize(request_.spec, lambda_total,
                        request_.parallelism.resolved_threads());
}

SplitResult SynthesisEngine::split_minimize(const ProblemSpec& base,
                                            int lambda_total, int threads) {
  util::check_spec(base.with_recovery,
                   "minimize_total_latency requires recovery mode");
  const int critical_path =
      dfg::critical_path_length(base.graph, base.op_latencies());
  util::check_spec(lambda_total >= 2 * critical_path,
                   "lambda_total below twice the critical path (" +
                       std::to_string(critical_path) +
                       "): no split can schedule both phases");

  std::vector<int> splits;
  for (int lambda_det = critical_path;
       lambda_det <= lambda_total - critical_path; ++lambda_det) {
    splits.push_back(lambda_det);
  }
  std::vector<OptimizeResult> attempts(splits.size());
  run_indexed(splits.size(), threads,
              [&](std::size_t i, int inner_threads) {
                ProblemSpec spec = base;
                spec.lambda_detection = splits[i];
                spec.lambda_recovery = lambda_total - splits[i];
                attempts[i] = minimize_spec(spec, inner_threads);
              });

  // Fold in ascending lambda_det order — the same deterministic pick the
  // sequential sweep makes, regardless of which lane finished first.
  SplitResult best;
  bool any_inconclusive = false;
  for (std::size_t i = 0; i < splits.size(); ++i) {
    const OptimizeResult& attempt = attempts[i];
    if (attempt.status == OptStatus::kUnknown ||
        attempt.status == OptStatus::kFeasible) {
      // A '*' result or no result at all leaves room for a cheaper design
      // under this split.
      any_inconclusive = true;
    }
    const bool better =
        attempt.has_solution() &&
        (!best.result.has_solution() || attempt.cost < best.result.cost ||
         (attempt.cost == best.result.cost &&
          attempt.status == OptStatus::kOptimal &&
          best.result.status != OptStatus::kOptimal));
    if (better) {
      best.result = attempt;
      best.lambda_detection = splits[i];
      best.lambda_recovery = lambda_total - splits[i];
    }
  }
  if (!best.result.has_solution()) {
    best.result.status =
        any_inconclusive ? OptStatus::kUnknown : OptStatus::kInfeasible;
  } else if (any_inconclusive &&
             best.result.status == OptStatus::kOptimal) {
    // Optimal for its own split, but some other split was inconclusive, so
    // the row-level minimum is not proved.
    best.result.status = OptStatus::kFeasible;
  }
  return best;
}

std::vector<FrontierPoint> SynthesisEngine::sweep_frontier(
    const FrontierSweep& sweep) {
  const ProblemSpec& base = request_.spec;
  const int threads = request_.parallelism.resolved_threads();
  std::vector<FrontierPoint> frontier(sweep.values.size());
  if (sweep.axis == FrontierSweep::Axis::kArea) {
    run_indexed(sweep.values.size(), threads,
                [&](std::size_t i, int inner_threads) {
                  ProblemSpec spec = base;
                  spec.area_limit = sweep.values[i];
                  frontier[i].constraint = sweep.values[i];
                  frontier[i].result = minimize_spec(spec, inner_threads);
                });
    return frontier;
  }
  util::check_spec(base.with_recovery,
                   "latency frontier sweeps the combined schedule; the spec "
                   "must have recovery enabled");
  const int critical_path =
      dfg::critical_path_length(base.graph, base.op_latencies());
  run_indexed(sweep.values.size(), threads,
              [&](std::size_t i, int inner_threads) {
                const int lambda_total = static_cast<int>(sweep.values[i]);
                frontier[i].constraint = lambda_total;
                if (lambda_total < 2 * critical_path) {
                  frontier[i].result.status = OptStatus::kInfeasible;
                } else {
                  frontier[i].result =
                      split_minimize(base, lambda_total, inner_threads)
                          .result;
                }
              });
  return frontier;
}

OptimizeResult SynthesisEngine::reoptimize(
    const std::set<LicenseKey>& banned) {
  ProblemSpec thinned = request_.spec;
  thinned.catalog = without_licenses(request_.spec.catalog, banned);
  // A class whose every offer is banned makes the problem unsolvable;
  // report that as infeasibility rather than a spec error.
  const auto counts = thinned.graph.ops_per_class();
  for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    if (counts[cls] == 0) continue;
    if (thinned.catalog.num_vendors_offering(
            static_cast<dfg::ResourceClass>(cls)) == 0) {
      OptimizeResult result;
      result.status = OptStatus::kInfeasible;
      return result;
    }
  }
  return minimize_spec(thinned, request_.parallelism.resolved_threads());
}

SynthesisRequest make_request(const ProblemSpec& spec,
                              const OptimizerOptions& options) {
  SynthesisRequest request;
  request.spec = spec;
  request.strategy = options.strategy;
  request.limits.time_limit_seconds = options.time_limit_seconds;
  request.limits.csp_node_limit = options.csp_node_limit;
  request.limits.heuristic_restarts = options.heuristic_restarts;
  request.limits.heuristic_node_limit = options.heuristic_node_limit;
  request.limits.max_combos = options.max_combos;
  request.parallelism.threads = options.threads;
  request.seed = options.seed;
  return request;
}

}  // namespace ht::core
