#include "core/engine.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <optional>
#include <utility>

#include "core/bounds.hpp"
#include "core/greedy.hpp"
#include "core/ilp_formulation.hpp"
#include "core/incumbent_pool.hpp"
#include "core/palette.hpp"
#include "core/sls_binder.hpp"
#include "core/reoptimize.hpp"
#include "core/rules.hpp"
#include "dfg/analysis.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace ht::core {
namespace {

const char* csp_status_name(CspResult::Status status) {
  switch (status) {
    case CspResult::Status::kFeasible:
      return "feasible";
    case CspResult::Status::kInfeasible:
      return "infeasible";
    case CspResult::Status::kNodeLimit:
      return "node_limit";
    case CspResult::Status::kTimeout:
      return "timeout";
    case CspResult::Status::kCancelled:
      return "cancelled";
  }
  return "?";
}

/// Result of evaluating one license set. Everything here is a pure
/// function of (spec, palettes, index, request budgets and seed) — the
/// bedrock of the N-thread == 1-thread determinism guarantee — except when
/// a wall-clock or cancellation stop truncates an evaluation.
struct ComboOutcome {
  bool feasible = false;
  /// Budget/time/cancel truncation: the set is neither proven feasible nor
  /// proven infeasible, so optimality claims must account for it.
  bool inconclusive = false;
  Solution solution;
  long csp_nodes = 0;
  long backjumps = 0;
  long restarts = 0;
  long watch_visits = 0;
  /// Nogoods the CSP learned on this set (empty when learning is off or
  /// the outcome was wall-clock truncated); recorded into the engine's
  /// NogoodStore by the committing worker.
  std::vector<CspNogood> learned;
};

ComboOutcome evaluate_combo(const ProblemSpec& spec, const Palettes& palettes,
                            long index, const SynthesisRequest& request,
                            double remaining_seconds,
                            const std::vector<CspNogood>* imported) {
  HT_TRACE_SPAN("stage/csp", "combo", index);
  obs::StageTimer dispatch_timer(obs::Stage::kCspDispatch);
  ComboOutcome out;
  // Cheap primal attempts first: a greedy success avoids any search for
  // this license set (feasibility is feasibility). Drawn from the shared
  // per-palette seed schedule (palette_seed in csp_solver.hpp, stream =
  // palette index + 1 — the full-market probe is index -1) so results do
  // not depend on evaluation order and every stochastic component of one
  // request reads one schedule.
  const std::uint64_t salt = request.strategy == Strategy::kExact
                                 ? request.seed
                                 : request.seed * 0x9e3779b9ull;
  util::Rng greedy_rng(
      palette_seed(salt, static_cast<std::uint64_t>(index + 1)));
  for (int attempt = 0; attempt < 4 * request.limits.heuristic_restarts;
       ++attempt) {
    if (request.cancel && request.cancel->cancelled()) {
      out.inconclusive = true;
      return out;
    }
    const std::optional<Solution> constructed =
        greedy_construct(spec, palettes, greedy_rng);
    if (constructed) {
      out.feasible = true;
      out.solution = *constructed;
      obs::trace_instant("csp/status", "status", "greedy", "combo", index);
      return out;
    }
  }

  const bool learning = request.pruning.nogood_learning;
  if (request.strategy == Strategy::kExact) {
    CspOptions csp_options;
    csp_options.max_nodes = request.limits.csp_node_limit;
    csp_options.time_limit_seconds = std::max(0.1, remaining_seconds);
    csp_options.seed = 0;
    csp_options.cancel = request.cancel;
    csp_options.learning = learning;
    csp_options.flat_state = request.pruning.csp_flat_state;
    csp_options.imported = learning ? imported : nullptr;
    // Deterministic intra-palette parallelism: on big exact solves a single
    // palette's CSP dwarfs the combo loop, so split its root level across
    // the request's thread budget. Gated to budgets/sizes where the split
    // can pay (the per-block floor would distort small node-budgeted A/B
    // runs) and to learning mode so that `nogood_learning = false` stays a
    // node-for-node reproduction of the chronological engine.
    int split = request.limits.intra_palette_split;
    if (split == 0) {
      const int copies =
          spec.graph.num_ops() * (spec.with_recovery ? 3 : 2);
      split = (learning && copies >= 64 &&
               request.limits.csp_node_limit >= 1'000'000)
                  ? 8
                  : 1;
    }
    csp_options.subtree_split = split;
    csp_options.split_threads =
        split > 1 ? request.parallelism.resolved_threads() : 1;
    CspResult csp = schedule_and_bind(spec, palettes, csp_options);
    obs::trace_instant("csp/status", "status", csp_status_name(csp.status),
                       "combo", index);
    out.csp_nodes += csp.nodes;
    out.backjumps += csp.backjumps;
    out.restarts += csp.restarts;
    out.watch_visits += csp.watch_visits;
    out.learned = std::move(csp.learned);
    if (csp.status == CspResult::Status::kFeasible) {
      out.feasible = true;
      out.solution = csp.solution;
    } else {
      out.inconclusive = csp.status != CspResult::Status::kInfeasible;
    }
    return out;
  }

  // Heuristic: budgeted CSP run; an infeasibility proof within the cap is
  // still a proof (the search is complete, just capped). With learning on,
  // `heuristic_restarts` is a live knob again: the solve gets a Luby
  // restart schedule (unit = per-restart budget, phases rotated by the
  // per-palette seed schedule, so sibling license sets explore different
  // restart phases) under the restart-scaled total budget — and because the
  // first Luby segment is the canonical descent with the single-attempt
  // budget, outcomes can only upgrade relative to the no-restart engine.
  // With learning off it stays one canonical descent (the historical
  // engine, bit for bit) — restarting an identical search was pure waste.
  CspOptions csp_options;
  csp_options.time_limit_seconds = std::max(0.1, remaining_seconds);
  csp_options.seed = 0;
  csp_options.cancel = request.cancel;
  csp_options.learning = learning;
  csp_options.flat_state = request.pruning.csp_flat_state;
  if (learning) {
    csp_options.max_nodes = request.limits.heuristic_node_limit *
                            std::max(1, request.limits.heuristic_restarts);
    csp_options.restart_base = request.limits.heuristic_node_limit;
    csp_options.seed =
        palette_seed(request.seed, static_cast<std::uint64_t>(index + 1));
    csp_options.imported = imported;
  } else {
    csp_options.max_nodes = request.limits.heuristic_node_limit;
  }
  CspResult attempt = schedule_and_bind(spec, palettes, csp_options);
  obs::trace_instant("csp/status", "status", csp_status_name(attempt.status),
                     "combo", index);
  out.csp_nodes += attempt.nodes;
  out.backjumps += attempt.backjumps;
  out.restarts += attempt.restarts;
  out.watch_visits += attempt.watch_visits;
  out.learned = std::move(attempt.learned);
  if (attempt.status == CspResult::Status::kFeasible) {
    out.feasible = true;
    out.solution = attempt.solution;
  } else {
    out.inconclusive = attempt.status != CspResult::Status::kInfeasible;
  }
  return out;
}

/// Everything the workers share, guarded by one mutex (license-set
/// evaluation dominates; the critical sections are microseconds). The
/// cache itself has its own sharded locks; it is touched under the search
/// mutex only for quick record/lookup calls.
struct SharedSearch {
  explicit SharedSearch(ComboQueue combo_queue)
      : queue(std::move(combo_queue)) {}

  std::mutex mutex;
  ComboQueue queue;
  long evaluated_dispatched = 0;
  bool stop = false;
  bool cancelled = false;
  bool timed_out = false;

  const StaticScreens* screens = nullptr;  ///< never null during search
  SearchCache* cache = nullptr;            ///< null = dominance cache off
  NogoodStore* nogoods = nullptr;          ///< null = nogood learning off
  const LowerBounds* bounds = nullptr;     ///< null = cost bounds off
  /// Lower bound on the license cost of ANY feasible solution (the
  /// combinatorial floor, optionally tightened by the LP relaxation).
  /// Computed once before the search, so every thread count prunes the
  /// same sets.
  long long cost_floor = 0;
  /// The combinatorial portion of cost_floor alone (no LP tightening).
  /// Floor prunes of sets at or above this line are attributable to the LP
  /// bound — the prune-reason split the metrics report.
  long long comb_floor = 0;
  std::uint64_t epoch = 0;
  std::uint64_t nogood_epoch = 0;
  std::uint64_t ctx = 0;

  bool have_incumbent = false;
  long long best_cost = 0;
  /// Portfolio member rank of the incumbent (0 = exact; see
  /// core/incumbent_pool.hpp). Pre-seeded by phase A when the portfolio is
  /// on; the commit rule below lets an exact solution of equal cost take
  /// the win back from a seeder.
  int best_rank = 0;
  /// Palette index of an exact incumbent; the seeding member's attempt
  /// index for a pool incumbent (only ever compared within one rank).
  long best_index = -1;
  /// When a binding at best_cost first existed (operation clock); strictly
  /// cheaper commits reset it, equal-cost commits keep the earlier time.
  double best_seconds = -1.0;
  Solution best_solution;
  /// Truncated evaluations, deferred: (combo cost, signature). Classified
  /// after the workers join — a completed dominance proof may retroactively
  /// cover a truncated set, and doing the accounting post-join keeps it
  /// identical across thread counts.
  std::vector<std::pair<long long, PaletteSignature>> inconclusives;
  OptimizeStats stats;
  /// Per-operation metrics (request.observability.metrics); workers merge
  /// their thread-local sinks in under the mutex at each commit.
  obs::SolveMetrics metrics;
  /// Consecutive skips since the last progress publication (see
  /// kPruneProgressInterval).
  long prunes_since_progress = 0;
  std::exception_ptr failure;
};

/// Fills a progress snapshot from the shared state (caller holds
/// shared.mutex) and invokes the callback under the progress mutex.
void publish_progress(SharedSearch& shared, const SynthesisRequest& request,
                      const util::Timer& timer,
                      std::mutex& progress_mutex) {
  SynthesisProgress progress;
  progress.combos_tried = shared.stats.combos_tried;
  progress.combos_skipped_screen = shared.stats.combos_skipped_screen;
  progress.combos_skipped_cache = shared.stats.combos_skipped_cache;
  progress.lb_prunes = shared.stats.lb_prunes;
  progress.csp_nodes = shared.stats.csp_nodes;
  progress.nodes_total = shared.stats.nodes_total;
  progress.have_incumbent = shared.have_incumbent;
  progress.incumbent_cost = shared.best_cost;
  progress.seconds = timer.elapsed_seconds();
  if (request.observability.metrics) progress.metrics = shared.metrics;
  std::lock_guard<std::mutex> progress_lock(progress_mutex);
  request.progress(progress);
}

/// One search lane. Pulls license sets off the shared cheapest-first queue
/// (assigning each evaluated set its palette index), evaluates them
/// outside the lock, and commits under the lock with the deterministic
/// rule: winner = lowest (license cost, palette index).
void search_worker(SharedSearch& shared, const SynthesisRequest& request,
                   const ProblemSpec& spec, const util::Timer& timer,
                   std::mutex& progress_mutex) {
  try {
    // Lanes run on pool threads that know nothing about the request, so
    // each one re-establishes the service correlation id for its spans.
    obs::CorrelationScope correlation(request.observability.request_id);
    // Per-worker metrics sink: every instrumentation site below this frame
    // (dispatch checks, CSP, cache, validator) records here lock-free;
    // commits merge it into shared.metrics under the search mutex. The
    // Flush guard catches the exit paths (stop/timeout/cancel returns) —
    // it is declared at function scope, so its destructor runs after every
    // inner lock_guard has released the mutex.
    obs::SolveMetrics local_metrics;
    const bool collect = request.observability.metrics;
    obs::MetricsBinding metrics_binding(collect ? &local_metrics : nullptr);
    struct Flush {
      SharedSearch& shared;
      obs::SolveMetrics& local;
      bool enabled;
      ~Flush() {
        if (!enabled || local.empty()) return;
        std::lock_guard<std::mutex> lock(shared.mutex);
        shared.metrics.merge(local);
      }
    } flush{shared, local_metrics, collect};

    // Accounts one pruned license set (caller holds shared.mutex): metric +
    // trace event, and a forced progress publication every
    // kPruneProgressInterval consecutive skips so callbacks never stall
    // through a long prune-only streak.
    const auto note_prune = [&](obs::PruneReason reason, long long cost) {
      obs::record_prune(reason);
      obs::trace_instant("prune", "reason",
                         obs::prune_reason_name(reason), "cost", cost);
      if (request.progress &&
          ++shared.prunes_since_progress >= kPruneProgressInterval) {
        shared.prunes_since_progress = 0;
        if (collect && !local_metrics.empty()) {
          shared.metrics.merge(local_metrics);
          local_metrics.reset();
        }
        publish_progress(shared, request, timer, progress_mutex);
      }
    };

    Palettes palettes;
    for (;;) {
      long index = -1;
      long long combo_cost = 0;
      double remaining = 0.0;
      PaletteSignature sig;
      {
        std::lock_guard<std::mutex> lock(shared.mutex);
        for (;;) {
          if (shared.stop) return;
          if (request.cancel && request.cancel->cancelled()) {
            shared.stop = true;
            shared.cancelled = true;
            return;
          }
          remaining =
              request.limits.time_limit_seconds - timer.elapsed_seconds();
          if (remaining <= 0.0) {
            shared.stop = true;
            shared.timed_out = true;
            return;
          }
          if (shared.evaluated_dispatched >= request.limits.max_combos) {
            shared.stop = true;
            return;
          }
          long long next_cost = 0;
          if (!shared.queue.peek(next_cost)) {
            shared.stop = true;
            return;
          }
          if (shared.have_incumbent && next_cost >= shared.best_cost) {
            // Every remaining set costs at least as much as the incumbent.
            shared.stop = true;
            return;
          }
          if (shared.have_incumbent && shared.bounds &&
              shared.cost_floor >= shared.best_cost) {
            // The cost floor meets the incumbent: every feasible solution
            // costs at least the floor, so the incumbent is already the
            // optimum — no need to grind the remaining (provably
            // infeasible) cheaper sets through the window.
            shared.stop = true;
            return;
          }
          shared.queue.next(palettes, combo_cost);
          if (shared.bounds && request.pruning.static_screens &&
              combo_cost < shared.cost_floor) {
            // O(1) global-floor refutation on the hot path, before the
            // signature/screen/cache work: any solution under this set
            // would be billed at most the set's own license cost, below
            // the proven floor on every feasible solution — impossible.
            // Gated on the enhanced screens because those consume the
            // window exactly like this prune does, so the index
            // assignment stays bit-identical to a bounds-off run; under
            // the legacy screens the same check runs after them (below)
            // to preserve their historical no-consume semantics. Skipping
            // the cache record is sound for this operation: a dominance
            // entry covers only per-class *subset* palettes, whose combo
            // cost is never higher — such sets are themselves below the
            // floor and so are pruned here, never dispatched.
            ++shared.stats.lb_prunes;
            ++shared.evaluated_dispatched;
            note_prune(combo_cost >= shared.comb_floor
                           ? obs::PruneReason::kLp
                           : obs::PruneReason::kBound,
                       combo_cost);
            continue;
          }
          sig = signature_of(spec, palettes);
          bool screen_refuted = false;
          {
            HT_TRACE_SPAN("stage/screen");
            obs::StageTimer screen_timer(obs::Stage::kScreen);
            screen_refuted = shared.screens->refutes(palettes);
          }
          if (screen_refuted) {
            // Complete static proof, not an unknown. Under the enhanced
            // screens the skip consumes the set's palette index (the same
            // rule the cache uses below): a pruned run then resolves the
            // exact budget window an unpruned run would, just without the
            // CSP work — strictly faster, identical statuses and costs.
            // The legacy bound keeps the historical no-consume semantics
            // so `pruning.static_screens = false` reproduces the old
            // engine bit for bit.
            ++shared.stats.combos_skipped_screen;
            if (shared.cache) {
              shared.cache->record(sig, shared.epoch, shared.ctx,
                                   combo_cost);
            }
            if (request.pruning.static_screens) {
              ++shared.evaluated_dispatched;
            }
            note_prune(obs::PruneReason::kScreen, combo_cost);
            continue;
          }
          // Branch-and-bound prunes. Both run *after* the screens so a
          // legacy-screen skip keeps its historical no-consume semantics in
          // every flag combination; any set reaching this point would be
          // dispatched (and so consume the window) by the bounds-off
          // engine, which is why consuming here keeps the index assignment
          // — and therefore every status and cost — bit-identical to a
          // bounds-off run. The only visible delta is wall clock plus
          // upgrade-only status strengthening at the end of the search.
          if (shared.bounds && combo_cost < shared.cost_floor) {
            // O(1) global-floor refutation: any solution under this set
            // would be billed at most the set's own license cost, below
            // the proven floor on every feasible solution — impossible.
            ++shared.stats.lb_prunes;
            ++shared.evaluated_dispatched;
            note_prune(combo_cost >= shared.comb_floor
                           ? obs::PruneReason::kLp
                           : obs::PruneReason::kBound,
                       combo_cost);
            continue;
          }
          bool bound_refuted = false;
          if (shared.bounds) {
            HT_TRACE_SPAN("stage/bounds");
            obs::StageTimer bounds_timer(obs::Stage::kBoundsRefute);
            bound_refuted = shared.bounds->refutes(palettes);
          }
          if (bound_refuted) {
            // Energetic instance/area floors: a complete proof that no
            // schedule fits under this palette, cacheable like a screen
            // refutation.
            ++shared.stats.lb_prunes;
            if (shared.cache) {
              shared.cache->record(sig, shared.epoch, shared.ctx,
                                   combo_cost);
            }
            ++shared.evaluated_dispatched;
            note_prune(obs::PruneReason::kBound, combo_cost);
            continue;
          }
          bool cache_dominated = false;
          if (shared.cache) {
            HT_TRACE_SPAN("stage/cache");
            obs::StageTimer cache_timer(obs::Stage::kCacheProbe);
            cache_dominated =
                shared.cache->dominated_frozen(sig, shared.epoch);
          }
          if (cache_dominated) {
            // A sealed proof from an earlier operation dominates this set:
            // infeasible by monotonicity, exactly what the CSP would have
            // returned. The skip consumes the set's palette index so the
            // dispatch budget and index assignment line up with a
            // cache-off run.
            ++shared.stats.combos_skipped_cache;
            ++shared.evaluated_dispatched;
            note_prune(obs::PruneReason::kCache, combo_cost);
            continue;
          }
          index = shared.evaluated_dispatched++;
          ++shared.stats.combos_tried;
          shared.prunes_since_progress = 0;
          break;
        }
      }

      // Frozen-tier import: entries sealed before this operation whose
      // guard dominates this palette. The store is internally locked and
      // the frozen tier is immutable during the search, so this runs
      // outside the dispatch lock and every interleaving reads the same
      // set.
      std::vector<CspNogood> imported;
      if (shared.nogoods) {
        shared.nogoods->collect_frozen(sig, shared.nogood_epoch, &imported);
      }
      ComboOutcome outcome =
          evaluate_combo(spec, palettes, index, request, remaining,
                         imported.empty() ? nullptr : &imported);
      const long learned_here = static_cast<long>(outcome.learned.size());
      if (shared.nogoods && !outcome.learned.empty()) {
        shared.nogoods->record(std::move(outcome.learned), sig,
                               shared.nogood_epoch, shared.ctx, combo_cost);
      }

      {
        std::lock_guard<std::mutex> lock(shared.mutex);
        shared.stats.csp_nodes += outcome.csp_nodes;
        shared.stats.nodes_total += outcome.csp_nodes;
        shared.stats.backjumps += outcome.backjumps;
        shared.stats.restarts += outcome.restarts;
        shared.stats.nogood_watch_visits += outcome.watch_visits;
        shared.stats.nogoods_learned += learned_here;
        if (collect && !local_metrics.empty()) {
          shared.metrics.merge(local_metrics);
          local_metrics.reset();
        }
        if (outcome.feasible) {
          require_valid(spec, outcome.solution);
          const long long cost = outcome.solution.license_cost(spec);
          // Deterministic commit rule, portfolio-extended: winner = lowest
          // (license cost, member rank, palette index). Exact commits are
          // rank 0, so at equal cost they displace any phase-A seeder —
          // which is what keeps portfolio-on bindings identical to exact
          // whenever the exact search completes.
          if (!shared.have_incumbent || cost < shared.best_cost) {
            shared.best_seconds = timer.elapsed_seconds();
          }
          if (!shared.have_incumbent || cost < shared.best_cost ||
              (cost == shared.best_cost &&
               (shared.best_rank > 0 || index < shared.best_index))) {
            shared.have_incumbent = true;
            shared.best_cost = cost;
            shared.best_rank = 0;
            shared.best_index = index;
            shared.best_solution = outcome.solution;
            obs::trace_instant("engine/incumbent", "cost", cost, "combo",
                               index);
            util::log_fields(util::LogLevel::kDebug, "engine.incumbent",
                             {{"cost", cost},
                              {"combo", index},
                              {"combos_tried", shared.stats.combos_tried}});
          }
        } else if (outcome.inconclusive) {
          shared.inconclusives.emplace_back(combo_cost, sig);
        } else if (shared.cache) {
          // Complete CSP refutation: cacheable proof. Truncated outcomes
          // (node limit / timeout / cancel) prove nothing and are never
          // recorded.
          shared.cache->record(sig, shared.epoch, shared.ctx, combo_cost);
        }
        if (request.progress) {
          shared.prunes_since_progress = 0;
          publish_progress(shared, request, timer, progress_mutex);
        }
      }
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(shared.mutex);
    if (!shared.failure) shared.failure = std::current_exception();
    shared.stop = true;
  }
}

/// Runs fn(i, inner_threads) for i in [0, n) across `threads` compute
/// lanes: min(threads, n) outer lanes, the rest of the budget handed down
/// to each call. Exceptions from any lane are rethrown (first one wins).
void run_indexed(std::size_t n, int threads,
                 const std::function<void(std::size_t, int)>& fn) {
  const int outer =
      std::max(1, std::min(threads, static_cast<int>(n == 0 ? 1 : n)));
  const int inner = std::max(1, threads / outer);
  if (outer == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i, inner);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::mutex failure_mutex;
  std::exception_ptr failure;
  auto lane = [&] {
    try {
      for (std::size_t i;
           (i = next.fetch_add(1, std::memory_order_relaxed)) < n;) {
        fn(i, inner);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(failure_mutex);
      if (!failure) failure = std::current_exception();
    }
  };
  {
    util::ThreadPool pool(outer - 1);
    util::TaskGroup group(pool);
    for (int t = 0; t < outer - 1; ++t) group.run(lane);
    lane();  // the calling thread is a lane too
    group.wait();
  }
  if (failure) std::rethrow_exception(failure);
}

}  // namespace

const char* request_kind_name(RequestKind kind) {
  switch (kind) {
    case RequestKind::kMinimize:
      return "minimize";
    case RequestKind::kMinimizeTotalLatency:
      return "minimize_total_latency";
    case RequestKind::kAreaFrontier:
      return "area_frontier";
    case RequestKind::kLatencyFrontier:
      return "latency_frontier";
    case RequestKind::kReoptimize:
      return "reoptimize";
  }
  return "?";
}

bool parse_request_kind(const std::string& name, RequestKind* out) {
  for (int k = 0; k < kNumRequestKinds; ++k) {
    const auto kind = static_cast<RequestKind>(k);
    if (name == request_kind_name(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

SynthesisEngine::SynthesisEngine(SynthesisRequest request)
    : request_(std::move(request)) {}

SynthesisResponse SynthesisEngine::run(const SynthesisRequest& request) {
  request_ = request;
  return run();
}

SynthesisResponse SynthesisEngine::run() {
  // Covers the calling thread for the whole operation (enumeration,
  // sweeps, logging); spawned lanes re-establish the scope themselves.
  obs::CorrelationScope correlation(request_.observability.request_id);
  SynthesisResponse response;
  response.kind = request_.kind;
  switch (request_.kind) {
    case RequestKind::kMinimize:
      response.result = minimize();
      break;
    case RequestKind::kMinimizeTotalLatency: {
      const SplitResult split = minimize_total_latency(request_.lambda_total);
      response.result = split.result;
      response.lambda_detection = split.lambda_detection;
      response.lambda_recovery = split.lambda_recovery;
      break;
    }
    case RequestKind::kAreaFrontier:
    case RequestKind::kLatencyFrontier: {
      FrontierSweep sweep;
      sweep.axis = request_.kind == RequestKind::kAreaFrontier
                       ? FrontierSweep::Axis::kArea
                       : FrontierSweep::Axis::kTotalLatency;
      sweep.values = request_.sweep_values;
      response.frontier = sweep_frontier(sweep);
      if (!response.frontier.empty()) {
        response.result = response.frontier.front().result;
      }
      break;
    }
    case RequestKind::kReoptimize:
      response.result = reoptimize(request_.banned);
      break;
  }
  return response;
}

SynthesisResponse synthesize(const SynthesisRequest& request) {
  SynthesisEngine engine;
  return engine.run(request);
}

void SynthesisEngine::adopt_warm(const WarmSnapshotPtr& snap) {
  if (snap == nullptr) {
    cache_.adopt(nullptr);
    nogoods_.adopt(nullptr);
    return;
  }
  // Aliasing shared_ptrs: both sub-snapshots pin the whole WarmSnapshot, so
  // the bundle stays alive as long as either store reads from it.
  cache_.adopt(
      std::shared_ptr<const CacheSnapshot>(snap, &snap->cache));
  nogoods_.adopt(
      std::shared_ptr<const NogoodSnapshot>(snap, &snap->nogoods));
}

WarmDelta SynthesisEngine::export_warm_delta() const {
  WarmDelta delta;
  delta.cache = cache_.export_delta();
  delta.nogoods = nogoods_.export_delta();
  return delta;
}

OptimizeResult SynthesisEngine::minimize() {
  op_epoch_ = cache_.begin_op(request_.spec);
  nogood_epoch_ = nogoods_.begin_op(request_.spec);
  return minimize_spec(request_.spec, request_.parallelism.resolved_threads(),
                       /*ctx=*/0);
}

OptimizeResult SynthesisEngine::minimize_spec(const ProblemSpec& spec,
                                              int threads,
                                              std::uint64_t ctx) {
  spec.validate();
  util::Timer timer;
  OptimizeResult result;
  // Split/sweep points reach here on pool lanes where the run()-level
  // scope does not apply; declared before the span so the span carries it.
  obs::CorrelationScope correlation(request_.observability.request_id);
  HT_TRACE_SPAN("engine/minimize");
  // The calling thread's sink covers the pre-search stages (enumeration,
  // LP pricing, the probe, full-market screens); workers bind their own
  // sinks and merge into shared.metrics, folded in after the join.
  obs::SolveMetrics op_metrics;
  obs::MetricsBinding op_binding(
      request_.observability.metrics ? &op_metrics : nullptr);

  // Latency bounds below the (weighted) critical path are a proof of
  // infeasibility.
  try {
    const std::vector<int> latencies = spec.op_latencies();
    (void)dfg::alap_levels(spec.graph, spec.lambda_detection, latencies);
    if (spec.with_recovery) {
      (void)dfg::alap_levels(spec.graph, spec.lambda_recovery, latencies);
    }
  } catch (const util::InfeasibleError&) {
    result.status = OptStatus::kInfeasible;
    result.stats.seconds = timer.elapsed_seconds();
    return result;
  }

  const auto min_sizes = min_vendors_per_class(spec);
  // A class whose conflict clique needs more vendors than the market
  // offers is a proof of infeasibility (e.g. recovery on a 2-vendor
  // market: the NC/RC/recovery triangle needs 3).
  for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    const auto rc = static_cast<dfg::ResourceClass>(cls);
    if (spec.graph.ops_per_class()[cls] == 0) continue;
    if (spec.catalog.num_vendors_offering(rc) < min_sizes[cls]) {
      result.status = OptStatus::kInfeasible;
      result.stats.seconds = timer.elapsed_seconds();
      return result;
    }
  }

  const StaticScreens screens(spec, request_.pruning.static_screens);
  // Monotonicity short-circuit: screens refuting even the *full market*
  // palette proves every combo (a per-class subset of it) infeasible, so
  // don't enumerate the combo space just to screen each entry — on wide
  // markets that space runs into the millions.
  Palettes full_market;
  for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    const auto rc = static_cast<dfg::ResourceClass>(cls);
    if (spec.graph.ops_per_class()[cls] == 0) continue;
    full_market[cls] = spec.catalog.vendors_by_cost(rc);
  }
  bool market_screened = false;
  {
    HT_TRACE_SPAN("stage/screen");
    obs::StageTimer screen_timer(obs::Stage::kScreen);
    market_screened = screens.refutes(full_market);
  }
  if (market_screened) {
    result.status = OptStatus::kInfeasible;
    result.stats.combos_skipped_screen = 1;
    result.stats.seconds = timer.elapsed_seconds();
    obs::record_prune(obs::PruneReason::kScreen);
    result.metrics = op_metrics;
    return result;
  }

  // Branch-and-bound lower bounds (core/bounds.hpp), computed once so
  // every lane prunes the same sets. The same monotonicity short-circuit
  // as the screens applies: floors the full market cannot supply refute
  // every palette.
  std::optional<LowerBounds> bounds;
  long long cost_floor = 0;
  long long comb_floor = 0;
  long lb_lp_solves = 0;
  if (request_.pruning.cost_bounds) {
    bounds.emplace(spec);
    cost_floor = bounds->global_cost_lb();
    comb_floor = cost_floor;
    bool market_refuted = false;
    {
      HT_TRACE_SPAN("stage/bounds");
      obs::StageTimer bounds_timer(obs::Stage::kBoundsRefute);
      market_refuted = bounds->refutes(full_market);
    }
    if (market_refuted) {
      result.status = OptStatus::kInfeasible;
      result.stats.lb_prunes = 1;
      result.stats.seconds = timer.elapsed_seconds();
      obs::record_prune(obs::PruneReason::kBound);
      result.metrics = op_metrics;
      return result;
    }
    if (request_.pruning.lp_bound) {
      HT_TRACE_SPAN("stage/lp");
      const PaletteSignature market_sig = signature_of(spec, full_market);
      long long lp = 0;
      if (!cache_.lp_bound(spec, market_sig, &lp)) {
        lp = license_lp_lower_bound(spec, bounds->instance_floors(),
                                    bounds->vendor_floors());
        ++lb_lp_solves;
        if (lp >= 0) cache_.store_lp_bound(spec, market_sig, lp);
      }
      cost_floor = std::max(cost_floor, lp);
    }
  }

  // Racing portfolio, phase A (request.portfolio.enabled): the greedy
  // seeder and the SLS binder run first, concurrently on the pool, as
  // deterministic step-budgeted incumbent hunters publishing validated
  // bindings into the shared IncumbentPool. The phase joins before the
  // exact dispatch loop starts, and the pool's deterministic best seeds
  // the loop's incumbent from time zero — so every set at or above it is
  // pruned (`next_cost >= best_cost`) and a cost floor meeting it proves
  // optimality with zero exact dispatching. Members never read the pool
  // mid-run (their trajectories are pure functions of (spec, seed,
  // budgets)); the lock-free best-cost hint exists for concurrent
  // publishes and external observers. Proofs still decide the race: a
  // seeded incumbent is only an upper bound, and the exact member takes
  // the win back at equal cost under the (cost, member rank, palette
  // index) commit rule.
  IncumbentPool pool;
  long portfolio_sls_steps = 0;
  // Full-market incumbent probe state (see the probe block below). In
  // portfolio mode the probe joins phase A as the exact member's own
  // seeder, racing the greedy/SLS members instead of running serially —
  // its billed-cost solution lands in the pool, so a probe binding
  // cheaper than anything phase A found still seeds the search
  // (upgrade-only: the portfolio can never commit worse than the serial
  // engine's probe backfill would have).
  std::optional<Solution> probe_solution;
  long probe_nodes = 0, probe_backjumps = 0, probe_restarts = 0;
  long probe_watch_visits = 0;
  double probe_seconds = -1.0;
  const bool probe_wanted =
      request_.pruning.nogood_learning &&
      (!request_.cancel || !request_.cancel->cancelled());
  if (request_.portfolio.enabled &&
      (!request_.cancel || !request_.cancel->cancelled())) {
    HT_TRACE_SPAN("engine/portfolio");
    std::vector<PortfolioMember> members;
    if (probe_wanted) members.push_back(PortfolioMember::kExact);
    if (request_.portfolio.greedy_member) {
      members.push_back(PortfolioMember::kGreedy);
    }
    if (request_.portfolio.sls_member) {
      members.push_back(PortfolioMember::kSls);
    }
    std::vector<obs::SolveMetrics> member_metrics(members.size());
    std::mutex sls_mutex;
    run_indexed(members.size(), threads, [&](std::size_t i, int) {
      obs::CorrelationScope correlation(request_.observability.request_id);
      obs::MetricsBinding member_binding(
          request_.observability.metrics ? &member_metrics[i] : nullptr);
      const int rank = static_cast<int>(members[i]);
      // Distinct deterministic stream per member, well away from the
      // palette-index streams evaluate_combo draws (see palette_seed).
      const std::uint64_t member_seed = palette_seed(
          request_.seed, 0x9e370000ull + static_cast<std::uint64_t>(rank));
      const auto publish = [&](const Solution& solution, long long cost,
                               long attempt) {
        Incumbent entry;
        entry.cost = cost;
        entry.member_rank = rank;
        entry.palette_index = attempt;
        entry.solution = solution;
        entry.publish_seconds = timer.elapsed_seconds();
        if (pool.publish(std::move(entry))) {
          obs::trace_instant("engine/incumbent", "cost", cost, "member",
                             static_cast<long>(rank));
        }
      };
      if (members[i] == PortfolioMember::kExact) {
        // The probe (below) moved into the race: one budgeted solve of
        // the least constrained palette, published at the licenses its
        // binding actually uses. palette_index max() keeps the old
        // backfill precedence — any true palette commit at equal cost
        // displaces it under the (cost, rank, index) rule.
        HT_TRACE_SPAN("engine/probe");
        ComboOutcome probe = evaluate_combo(
            spec, full_market, /*index=*/-1, request_,
            request_.limits.time_limit_seconds - timer.elapsed_seconds(),
            /*imported=*/nullptr);
        probe_nodes = probe.csp_nodes;
        probe_backjumps = probe.backjumps;
        probe_restarts = probe.restarts;
        probe_watch_visits = probe.watch_visits;
        probe_seconds = timer.elapsed_seconds();
        if (probe.feasible) {
          const long long cost = probe.solution.license_cost(spec);
          publish(probe.solution, cost, std::numeric_limits<long>::max());
          probe_solution = std::move(probe.solution);
        }
      } else if (members[i] == PortfolioMember::kGreedy) {
        // Full-market warm-up: the billed cost is the licenses a binding
        // actually uses, so full-market constructions are real upper
        // bounds on the optimum, found in microseconds when the spec is
        // easy for the greedy.
        util::Rng rng(member_seed);
        const int attempts =
            std::max(1, 4 * request_.limits.heuristic_restarts);
        long long best = std::numeric_limits<long long>::max();
        for (int a = 0; a < attempts; ++a) {
          if (request_.cancel && request_.cancel->cancelled()) break;
          const std::optional<Solution> constructed =
              greedy_construct(spec, full_market, rng);
          if (!constructed) continue;
          const long long cost = constructed->license_cost(spec);
          if (cost >= best) continue;
          best = cost;
          publish(*constructed, cost, a);
        }
      } else {
        obs::StageTimer sls_timer(obs::Stage::kSlsSearch);
        SlsOptions sls;
        sls.seed = member_seed;
        sls.restarts = request_.portfolio.sls_restarts;
        sls.perturbations = request_.portfolio.sls_perturbations;
        sls.time_limit_seconds = std::max(
            0.1,
            request_.limits.time_limit_seconds - timer.elapsed_seconds());
        sls.cancel = request_.cancel;
        sls.on_improved = publish;
        const SlsOutcome sls_outcome = sls_search(spec, sls);
        std::lock_guard<std::mutex> lock(sls_mutex);
        portfolio_sls_steps += sls_outcome.steps;
      }
    });
    for (obs::SolveMetrics& member : member_metrics) {
      op_metrics.merge(member);
    }
  }

  // Full-market incumbent probe: one budgeted solve of the *least*
  // constrained palette before the cheapest-first grind. On hard specs the
  // cheap sets are contested and burn their whole node budget inconclusive
  // while the full market solves in a handful of nodes — the probe turns
  // the budget-exhausted kUnknown those rows used to report into a
  // kFeasible with a real binding, priced at the licenses the solution
  // actually uses. It can never change any other answer: a winner cheaper
  // than the probe's set is committed exactly as before (every set cheaper
  // than a committed winner is dispatched or skipped-with-proof first), so
  // the probe only fills in answers the search failed to produce. Runs
  // before the search so a node-bounded probe is a pure function of (spec,
  // budgets) — the same determinism carve-out as every other evaluation.
  // Gated on nogood_learning: off must reproduce the historical engine.
  // In portfolio mode the probe already ran inside phase A above,
  // concurrently with the other members, and published into the pool.
  const std::optional<Incumbent> seeded = pool.best();
  if (probe_wanted && !request_.portfolio.enabled &&
      (!request_.cancel || !request_.cancel->cancelled())) {
    HT_TRACE_SPAN("engine/probe");
    ComboOutcome probe = evaluate_combo(
        spec, full_market, /*index=*/-1, request_,
        request_.limits.time_limit_seconds - timer.elapsed_seconds(),
        /*imported=*/nullptr);
    probe_nodes = probe.csp_nodes;
    probe_backjumps = probe.backjumps;
    probe_restarts = probe.restarts;
    probe_watch_visits = probe.watch_visits;
    probe_seconds = timer.elapsed_seconds();
    if (probe.feasible) probe_solution = std::move(probe.solution);
  }
  SharedSearch shared([&] {
    HT_TRACE_SPAN("stage/enumerate");
    obs::StageTimer enumerate_timer(obs::Stage::kEnumeration);
    return ComboQueue(enumerate_palettes(spec, min_sizes));
  }());
  shared.screens = &screens;
  shared.cache = request_.pruning.dominance_cache ? &cache_ : nullptr;
  shared.nogoods = request_.pruning.nogood_learning ? &nogoods_ : nullptr;
  shared.bounds = bounds ? &*bounds : nullptr;
  shared.cost_floor = cost_floor;
  shared.comb_floor = comb_floor;
  shared.epoch = op_epoch_;
  shared.nogood_epoch = nogood_epoch_;
  shared.ctx = ctx;
  if (seeded) {
    require_valid(spec, seeded->solution);
    shared.have_incumbent = true;
    shared.best_cost = seeded->cost;
    shared.best_rank = seeded->member_rank;
    shared.best_index = seeded->palette_index;
    shared.best_seconds = pool.best_cost_seconds();
    shared.best_solution = seeded->solution;
  }
  const int lanes = std::max(1, threads);
  if (lanes == 1) {
    search_worker(shared, request_, spec, timer, progress_mutex_);
  } else {
    util::ThreadPool pool(lanes - 1);
    util::TaskGroup group(pool);
    for (int t = 0; t < lanes - 1; ++t) {
      group.run([&] {
        search_worker(shared, request_, spec, timer, progress_mutex_);
      });
    }
    search_worker(shared, request_, spec, timer, progress_mutex_);
    group.wait();
  }
  if (shared.failure) std::rethrow_exception(shared.failure);

  result.stats = shared.stats;
  result.stats.nodes_total += probe_nodes;
  result.stats.backjumps += probe_backjumps;
  result.stats.restarts += probe_restarts;
  result.stats.nogood_watch_visits += probe_watch_visits;
  result.stats.lb_lp_solves = lb_lp_solves;
  result.stats.incumbents_published = pool.published();
  result.stats.sls_steps = portfolio_sls_steps;
  result.stats.time_to_incumbent_seconds = pool.first_publish_seconds();
  result.stats.time_to_best_seconds = shared.best_seconds;
  result.stats.best_source = shared.have_incumbent ? shared.best_rank : -1;
  result.stats.seconds = timer.elapsed_seconds();
  if (request_.observability.metrics) {
    op_metrics.merge(shared.metrics);
    result.metrics = op_metrics;
  }

  // Seal this sub-search's cache contribution down to its deterministic
  // prefix: only refutations of sets cheaper than the final incumbent are
  // dispatched in *every* run (the cheapest-first queue cannot stop while
  // cheaper sets remain), so only those may become skip-visible to later
  // operations. Then classify the deferred truncated evaluations — a
  // completed dominance proof retroactively covers a truncated set, which
  // can turn a '*' result into a proven one without any extra search.
  const long long keep_below =
      shared.have_incumbent ? shared.best_cost
                            : std::numeric_limits<long long>::max();
  if (shared.cache) {
    shared.cache->finalize_context(shared.epoch, ctx, keep_below);
  }
  if (shared.nogoods) {
    // Same deterministic-prefix rule as the cache: only nogoods learned on
    // sets cheaper than the final incumbent are dispatched in every run.
    shared.nogoods->finalize_context(shared.nogood_epoch, ctx, keep_below);
  }
  long long cheapest_inconclusive = -1;
  for (const auto& [combo_cost, sig] : shared.inconclusives) {
    if (shared.cache && shared.cache->dominated(sig, shared.epoch, ctx)) {
      continue;  // proven infeasible after all; not an unknown
    }
    ++result.stats.unknown_combos;
    if (cheapest_inconclusive < 0 || combo_cost < cheapest_inconclusive) {
      cheapest_inconclusive = combo_cost;
    }
  }

  long long next_cost = 0;
  const bool queue_drained = !shared.queue.peek(next_cost);
  if (shared.have_incumbent) {
    result.solution = shared.best_solution;
    result.cost = shared.best_cost;
    // Optimal iff every cheaper license set is disproven: nothing cheaper
    // is left undispatched and no truncated evaluation was cheaper. A cost
    // floor meeting the incumbent is an equivalent proof — every feasible
    // solution costs at least the floor, so whatever cheaper sets remain
    // in the queue are infeasible.
    const bool no_cheaper_left =
        queue_drained || next_cost >= shared.best_cost ||
        (bounds && cost_floor >= shared.best_cost);
    const bool proven = no_cheaper_left &&
                        (cheapest_inconclusive < 0 ||
                         cheapest_inconclusive >= shared.best_cost);
    result.status = proven ? OptStatus::kOptimal : OptStatus::kFeasible;
  } else if (queue_drained && result.stats.unknown_combos == 0) {
    result.status = OptStatus::kInfeasible;
  } else if (probe_solution) {
    // Budget exhausted with no incumbent, but the probe holds a feasible
    // full-market binding: report it instead of kUnknown. Never a downgrade
    // of a proof (the kInfeasible branch above requires a drained queue, in
    // which case the probe could not have found a solution).
    result.solution = std::move(*probe_solution);
    result.cost = result.solution.license_cost(spec);
    // `nodes` reports the winning attempt (see bench/bench_util.hpp): when
    // the probe supplies the committed solution, its nodes are the winning
    // sub-search (they are already in nodes_total either way).
    result.stats.csp_nodes += probe_nodes;
    // Backfill attribution: the committed binding existed the moment the
    // probe finished, and the probe is the exact member's own seeder.
    result.stats.best_source = static_cast<int>(PortfolioMember::kExact);
    result.stats.time_to_best_seconds = probe_seconds;
    // The probe's set is the full market, but its solution is billed at
    // the licenses it uses; a cost floor meeting that bill proves no
    // feasible design anywhere is cheaper, i.e. the backfill is optimal.
    result.status = (bounds && cost_floor >= result.cost)
                        ? OptStatus::kOptimal
                        : OptStatus::kFeasible;
  } else {
    result.status = OptStatus::kUnknown;
  }
  util::log_fields(util::LogLevel::kDebug, "engine.done",
                   {{"status", to_string(result.status)},
                    {"graph", spec.graph.name()},
                    {"combos", result.stats.combos_tried},
                    {"nodes", result.stats.csp_nodes},
                    {"seconds", result.stats.seconds},
                    {"threads", lanes},
                    {"req", static_cast<long long>(
                                request_.observability.request_id)}});
  return result;
}

SplitResult SynthesisEngine::minimize_total_latency(int lambda_total) {
  op_epoch_ = cache_.begin_op(request_.spec);
  nogood_epoch_ = nogoods_.begin_op(request_.spec);
  return split_minimize(request_.spec, lambda_total,
                        request_.parallelism.resolved_threads(),
                        /*ctx_base=*/0);
}

SplitResult SynthesisEngine::split_minimize(const ProblemSpec& base,
                                            int lambda_total, int threads,
                                            std::uint64_t ctx_base) {
  util::check_spec(base.with_recovery,
                   "minimize_total_latency requires recovery mode");
  const int critical_path =
      dfg::critical_path_length(base.graph, base.op_latencies());
  util::check_spec(lambda_total >= 2 * critical_path,
                   "lambda_total below twice the critical path (" +
                       std::to_string(critical_path) +
                       "): no split can schedule both phases");

  std::vector<int> splits;
  for (int lambda_det = critical_path;
       lambda_det <= lambda_total - critical_path; ++lambda_det) {
    splits.push_back(lambda_det);
  }
  std::vector<OptimizeResult> attempts(splits.size());
  run_indexed(splits.size(), threads,
              [&](std::size_t i, int inner_threads) {
                ProblemSpec spec = base;
                spec.lambda_detection = splits[i];
                spec.lambda_recovery = lambda_total - splits[i];
                attempts[i] =
                    minimize_spec(spec, inner_threads, ctx_base + i + 1);
              });

  // Fold in ascending lambda_det order — the same deterministic pick the
  // sequential sweep makes, regardless of which lane finished first.
  SplitResult best;
  bool any_inconclusive = false;
  for (std::size_t i = 0; i < splits.size(); ++i) {
    const OptimizeResult& attempt = attempts[i];
    if (attempt.status == OptStatus::kUnknown ||
        attempt.status == OptStatus::kFeasible) {
      // A '*' result or no result at all leaves room for a cheaper design
      // under this split.
      any_inconclusive = true;
    }
    const bool better =
        attempt.has_solution() &&
        (!best.result.has_solution() || attempt.cost < best.result.cost ||
         (attempt.cost == best.result.cost &&
          attempt.status == OptStatus::kOptimal &&
          best.result.status != OptStatus::kOptimal));
    if (better) {
      best.result = attempt;
      best.lambda_detection = splits[i];
      best.lambda_recovery = lambda_total - splits[i];
    }
  }
  if (!best.result.has_solution()) {
    best.result.status =
        any_inconclusive ? OptStatus::kUnknown : OptStatus::kInfeasible;
  } else if (any_inconclusive &&
             best.result.status == OptStatus::kOptimal) {
    // Optimal for its own split, but some other split was inconclusive, so
    // the row-level minimum is not proved.
    best.result.status = OptStatus::kFeasible;
  }
  // The winner's stats describe only its own sub-search; the row-total
  // counters sum every split's attempt so the work the non-winning splits
  // burned is visible (historically it was silently dropped).
  best.result.stats.nodes_total = 0;
  best.result.stats.nogoods_learned = 0;
  best.result.stats.backjumps = 0;
  best.result.stats.restarts = 0;
  best.result.stats.nogood_watch_visits = 0;
  best.result.stats.incumbents_published = 0;
  best.result.stats.sls_steps = 0;
  best.result.metrics.reset();
  for (const OptimizeResult& attempt : attempts) {
    best.result.stats.nodes_total += attempt.stats.nodes_total;
    best.result.stats.nogoods_learned += attempt.stats.nogoods_learned;
    best.result.stats.backjumps += attempt.stats.backjumps;
    best.result.stats.restarts += attempt.stats.restarts;
    best.result.stats.nogood_watch_visits += attempt.stats.nogood_watch_visits;
    best.result.stats.incumbents_published +=
        attempt.stats.incumbents_published;
    best.result.stats.sls_steps += attempt.stats.sls_steps;
    best.result.metrics.merge(attempt.metrics);
  }
  return best;
}

std::vector<FrontierPoint> SynthesisEngine::sweep_frontier(
    const FrontierSweep& sweep) {
  const ProblemSpec& base = request_.spec;
  const int threads = request_.parallelism.resolved_threads();
  op_epoch_ = cache_.begin_op(base);
  nogood_epoch_ = nogoods_.begin_op(base);
  std::vector<FrontierPoint> frontier(sweep.values.size());
  if (sweep.axis == FrontierSweep::Axis::kArea) {
    run_indexed(sweep.values.size(), threads,
                [&](std::size_t i, int inner_threads) {
                  ProblemSpec spec = base;
                  spec.area_limit = sweep.values[i];
                  frontier[i].constraint = sweep.values[i];
                  frontier[i].result =
                      minimize_spec(spec, inner_threads, i + 1);
                });
    return frontier;
  }
  util::check_spec(base.with_recovery,
                   "latency frontier sweeps the combined schedule; the spec "
                   "must have recovery enabled");
  const int critical_path =
      dfg::critical_path_length(base.graph, base.op_latencies());
  run_indexed(sweep.values.size(), threads,
              [&](std::size_t i, int inner_threads) {
                const int lambda_total = static_cast<int>(sweep.values[i]);
                frontier[i].constraint = lambda_total;
                if (lambda_total < 2 * critical_path) {
                  frontier[i].result.status = OptStatus::kInfeasible;
                } else {
                  // ctx_base keeps the nested splits of different sweep
                  // points in disjoint cache contexts.
                  frontier[i].result =
                      split_minimize(base, lambda_total, inner_threads,
                                     (i + 1) << 20)
                          .result;
                }
              });
  return frontier;
}

OptimizeResult SynthesisEngine::reoptimize(
    const std::set<LicenseKey>& banned) {
  ProblemSpec thinned = request_.spec;
  thinned.catalog = without_licenses(request_.spec.catalog, banned);
  // A class whose every offer is banned makes the problem unsolvable;
  // report that as infeasibility rather than a spec error.
  const auto counts = thinned.graph.ops_per_class();
  for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    if (counts[cls] == 0) continue;
    if (thinned.catalog.num_vendors_offering(
            static_cast<dfg::ResourceClass>(cls)) == 0) {
      OptimizeResult result;
      result.status = OptStatus::kInfeasible;
      return result;
    }
  }
  // The thinned catalog keeps vendor ids and offer areas, so every sealed
  // refutation transfers: quarantine re-searches skip straight past the
  // license sets the original search already disproved.
  op_epoch_ = cache_.begin_op(thinned);
  nogood_epoch_ = nogoods_.begin_op(thinned);
  return minimize_spec(thinned, request_.parallelism.resolved_threads(),
                       /*ctx=*/0);
}

SynthesisRequest make_request(const ProblemSpec& spec,
                              const OptimizerOptions& options) {
  SynthesisRequest request;
  request.spec = spec;
  request.strategy = options.strategy;
  request.limits.time_limit_seconds = options.time_limit_seconds;
  request.limits.csp_node_limit = options.csp_node_limit;
  request.limits.heuristic_restarts = options.heuristic_restarts;
  request.limits.heuristic_node_limit = options.heuristic_node_limit;
  request.limits.max_combos = options.max_combos;
  request.parallelism.threads = options.threads;
  request.pruning.cost_bounds = options.cost_bounds;
  request.portfolio.enabled = options.portfolio;
  request.observability.metrics = options.collect_metrics;
  request.seed = options.seed;
  return request;
}

}  // namespace ht::core
