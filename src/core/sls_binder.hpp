// Stochastic local-search binder: the incomplete member of the racing
// portfolio (see core/incumbent_pool.hpp and DESIGN.md "Racing portfolio").
//
// The exact optimizer enumerates license sets cheapest-first and proves
// each one feasible or infeasible; on high-n instances the cheap sets are
// contested and the proof grind dominates wall clock. This module attacks
// the same search space from the opposite direction: a message-passing /
// decimation loop over the (resource class, vendor) factor graph that
// *guesses* promising palettes and validates each guess with the greedy
// constructor. Survey-propagation style, each class keeps a bias field
// over its vendors (initialized from the license-cost prior, so cheap
// vendors are tried first); a restart samples ("decimates") one palette
// per class from the fields, validates it, then feeds the outcome back —
// vendors used by a feasible binding are reinforced, a failed sample
// penalizes its vendors and grows the palette width so the next sample has
// more diversity to work with. Feasible bindings additionally take
// drop-the-most-expensive-license descent steps toward the cost floor.
//
// Determinism. The whole search is a pure function of (spec, SlsOptions):
// restarts draw from the shared per-palette seed schedule
// (`palette_seed()` in core/csp_solver.hpp), attempt counts are fixed by
// the options, and nothing reads the clock. Candidate solutions come out
// of greedy_construct, so every returned binding is validated by
// construction; SLS proves nothing (it cannot return infeasibility) — it
// only supplies incumbents whose billed cost upper-bounds the optimum.
// The optional time limit and cancel token share the engine-wide
// truncation caveat: when they (rather than the attempt budget) stop the
// search, the cut point is wall-clock-dependent.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "core/greedy.hpp"

namespace ht::core {

struct SlsOptions {
  /// Request seed; restart r draws util::Rng(palette_seed(seed, r + 1)).
  std::uint64_t seed = 1;
  /// Independent decimation restarts (field state resets each restart).
  int restarts = 8;
  /// Palette samples ("perturbations") per restart.
  int perturbations = 12;
  /// Descent moves attempted per feasible candidate. Each move scans the
  /// drop/swap neighborhood once and takes the first improvement, so
  /// moves chain toward the cost floor; the budget is only spent when
  /// candidates keep improving.
  int descent_moves = 8;
  /// greedy_construct attempts per candidate palette (first success wins).
  /// The greedy's randomized tie-breaking binds tight palettes only some
  /// of the time — retries are what let a well-sampled narrow palette
  /// actually land instead of being misread as infeasible.
  int construction_tries = 8;
  /// Wall-clock safety net; <= 0 disables. Only truncates — results under
  /// the attempt budget are unaffected (same caveat as the engine's
  /// time_limit_seconds).
  double time_limit_seconds = 0.0;
  /// Optional cooperative stop; polled between construction attempts.
  const util::CancelToken* cancel = nullptr;
  /// Invoked on each strictly improving feasible binding, in improvement
  /// order (cost strictly decreasing). Observation only: the callback
  /// cannot steer the search, so publishing incumbents from it keeps the
  /// trajectory deterministic.
  std::function<void(const Solution& solution, long long cost, long attempt)>
      on_improved;
};

struct SlsOutcome {
  bool feasible = false;
  /// Best (cheapest-billed) validated binding found; meaningless unless
  /// `feasible`.
  Solution solution;
  long long cost = std::numeric_limits<long long>::max();
  /// greedy_construct calls — the search's step count.
  long steps = 0;
  long restarts_run = 0;
  /// Feasible candidates constructed (before cost comparison).
  long candidates_validated = 0;
};

/// Runs the decimation search. Deterministic for fixed (spec, options)
/// whenever the attempt budget (not the clock or the token) ends it.
SlsOutcome sls_search(const ProblemSpec& spec, const SlsOptions& options);

}  // namespace ht::core
