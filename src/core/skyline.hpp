// Incremental cycle-occupancy skyline.
//
// An OccupancySkyline is the profile "how many instances (and how much
// area) are busy at each control step" over cycles 1..lambda, maintained by
// interval deltas: placing an operation adds +k instances over its
// occupancy interval in O(latency), removing it subtracts the same. Peak
// queries are O(1) after additions; removals invalidate the cached peak
// lazily and the next peak query rescans once. This is the structure behind
// both resource feasibility ("would one more copy here exceed the cap?")
// and the area accounting of a partial schedule — the CSP solver maintains
// the same rows per (phase, vendor, class) with trailed deltas and answers
// its interval queries through the shared `row_peak` kernel below, and
// tests/skyline_test.cpp pins delta maintenance against full rebuilds on
// randomized add/remove sequences.
//
// `energetic_interval_floor` is the window-demand lower bound from
// core/bounds.cpp hoisted onto the same cycle-bucket representation: the
// max over windows [a, b] of ceil(total demand of items confined to the
// window / window width). bounds.cpp calls it per (phase, class); keeping
// it here lets the property tests compare it against the brute-force
// definition independently of LowerBounds.
#pragma once

#include <cstdint>
#include <vector>

#include "util/fast_reset.hpp"
#include "util/mask_kernels.hpp"

namespace ht::core {

/// Max occupancy over the interval [start, start + len) of a cycle row
/// whose index 0 holds cycle 1 — the in-search resource check, shared with
/// OccupancySkyline so solver rows and skyline rows agree by construction.
inline int row_peak(const int* row_cycle1, int start, int len) {
  return util::range_max_i32(row_cycle1 + (start - 1), len);
}

class OccupancySkyline {
 public:
  OccupancySkyline() = default;
  explicit OccupancySkyline(int lambda) { reset(lambda); }

  /// Re-dimensions to cycles 1..lambda, all-empty.
  void reset(int lambda);

  int lambda() const { return lambda_; }
  int instances_at(int cycle) const {
    return instances_[static_cast<std::size_t>(cycle - 1)];
  }
  long long area_at(int cycle) const {
    return area_[static_cast<std::size_t>(cycle - 1)];
  }

  /// Adds `instances` / `area` over cycles [start, start + len).
  void add(int start, int len, int instances, long long area);
  /// Exact inverse of add with the same arguments.
  void remove(int start, int len, int instances, long long area);

  /// Max instance occupancy over [start, start + len).
  int max_instances_in(int start, int len) const {
    return row_peak(instances_.data(), start, len);
  }

  /// Global peaks; O(1) after adds, one rescan after any removal.
  int peak_instances() const;
  long long peak_area() const;

 private:
  int lambda_ = 0;
  std::vector<int> instances_;    // index 0 = cycle 1
  std::vector<long long> area_;
  mutable int peak_instances_ = 0;
  mutable long long peak_area_ = 0;
  mutable bool peak_dirty_ = false;
};

/// One demand item for the energetic floor: an op whose whole feasible
/// occupancy is [lo, hi] contributing `demand` busy-cycles (weighted
/// latency) to any window that contains it.
struct EnergeticItem {
  int lo = 0;
  int hi = 0;
  long long demand = 0;
};

/// Max over windows [a, b] within [1, lambda] of
/// ceil(sum of demand of items with a <= lo and hi <= b, / (b - a + 1)).
/// Bit-identical to the historical double sweep in bounds.cpp.
int energetic_interval_floor(const std::vector<EnergeticItem>& items,
                             int lambda);

}  // namespace ht::core
