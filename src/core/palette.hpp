// Cheapest-first enumeration of license sets ("palettes").
//
// The paper's objective (17) depends only on which (vendor, class) licenses
// are purchased. The optimizer therefore searches the space of per-class
// vendor subsets in nondecreasing total license cost; the first subset
// combination that admits a valid schedule/binding is cost-optimal (given a
// complete feasibility check). This module provides that enumeration:
// per-class subset lists sorted by cost, and a best-first product queue
// across the classes the DFG actually uses.
#pragma once

#include <array>
#include <set>
#include <vector>

#include "core/csp_solver.hpp"

namespace ht::core {

/// One candidate palette for one resource class.
struct PaletteOption {
  long long cost = 0;  ///< sum of license costs of `vendors`
  std::vector<vendor::VendorId> vendors;
};

/// All candidate palettes per class, each list sorted by ascending cost.
/// Classes unused by the DFG get a single empty zero-cost option. Subset
/// sizes range from `min_sizes[cls]` (a proven lower bound, see
/// min_vendors_per_class) to every vendor offering the class.
std::array<std::vector<PaletteOption>, dfg::kNumResourceClasses>
enumerate_palettes(const ProblemSpec& spec,
                   const std::array<int, dfg::kNumResourceClasses>& min_sizes);

/// Best-first iterator over palette combinations ordered by total cost.
class ComboQueue {
 public:
  explicit ComboQueue(
      std::array<std::vector<PaletteOption>, dfg::kNumResourceClasses>
          options);

  /// Pops the next-cheapest combination; false when exhausted. Successive
  /// costs are nondecreasing.
  bool next(Palettes& palettes, long long& cost);

  /// Cost of the combination next() would return, without popping it;
  /// false when exhausted. The engine's dispatch loop uses this for the
  /// incumbent-bound stop and the end-of-search optimality proof.
  bool peek(long long& cost) const;

 private:
  struct Node {
    long long cost;
    std::array<int, dfg::kNumResourceClasses> index;

    bool operator>(const Node& other) const { return cost > other.cost; }
  };

  long long cost_of(const std::array<int, dfg::kNumResourceClasses>& index)
      const;
  void push(const std::array<int, dfg::kNumResourceClasses>& index);

  std::array<std::vector<PaletteOption>, dfg::kNumResourceClasses> options_;
  std::vector<Node> heap_;
  std::set<std::array<int, dfg::kNumResourceClasses>> visited_;
};

}  // namespace ht::core
