#include "core/nogood.hpp"

#include <algorithm>
#include <tuple>

namespace ht::core {
namespace {

std::tuple<int, int, int, int> lit_key(const NogoodLit& lit) {
  return {lit.copy, lit.vendor, lit.cycle_lo, lit.cycle_hi};
}

bool nogood_less(const CspNogood& a, const CspNogood& b) {
  return std::lexicographical_compare(
      a.lits.begin(), a.lits.end(), b.lits.begin(), b.lits.end(),
      [](const NogoodLit& x, const NogoodLit& y) {
        return lit_key(x) < lit_key(y);
      });
}

std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, int, int, long long>
guard_key(const PaletteSignature& sig) {
  return {sig.masks[0], sig.masks[1], sig.masks[2], sig.lambda_detection,
          sig.lambda_recovery, sig.area_limit};
}

}  // namespace

// Canonical (cost, literals, guard) order; the epoch/ctx tie-break keys of
// begin_op()'s seal are gone from snapshot entries by design — they scope
// recordings *within* one engine and mean nothing across engines.
void canonicalize_sealed_nogoods(std::vector<SealedNogood>* entries) {
  std::sort(entries->begin(), entries->end(),
            [](const SealedNogood& a, const SealedNogood& b) {
              if (a.combo_cost != b.combo_cost) {
                return a.combo_cost < b.combo_cost;
              }
              if (a.nogood != b.nogood) return nogood_less(a.nogood, b.nogood);
              return guard_key(a.guard) < guard_key(b.guard);
            });
  entries->erase(std::unique(entries->begin(), entries->end(),
                             [](const SealedNogood& a, const SealedNogood& b) {
                               return a.nogood == b.nogood &&
                                      guard_key(a.guard) == guard_key(b.guard);
                             }),
                 entries->end());
  if (entries->size() > NogoodStore::seal_cap()) {
    entries->resize(NogoodStore::seal_cap());
  }
}

std::uint64_t NogoodStore::begin_op(const ProblemSpec& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Same family-compatibility discipline as SearchCache::begin_op: the
  // structural fingerprint must match, and no offer both catalogs carry may
  // have changed area (nogoods deduced from area overflows depend on offer
  // areas; a *thinned* catalog with unchanged areas keeps every entry).
  const std::uint64_t fingerprint = spec_family_fingerprint(spec);
  bool compatible = fingerprint == fingerprint_;
  const std::size_t slots =
      static_cast<std::size_t>(spec.catalog.num_vendors()) *
      dfg::kNumResourceClasses;
  if (compatible) {
    for (vendor::VendorId v = 0; v < spec.catalog.num_vendors(); ++v) {
      for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
        const auto rc = static_cast<dfg::ResourceClass>(cls);
        if (!spec.catalog.offers(v, rc)) continue;
        long long& seen =
            offer_areas_[static_cast<std::size_t>(v) *
                             dfg::kNumResourceClasses +
                         static_cast<std::size_t>(cls)];
        const long long area = spec.catalog.offer(v, rc).area;
        if (seen < 0) {
          seen = area;
        } else if (seen != area) {
          compatible = false;
        }
      }
    }
  }
  if (!compatible) {
    clear_locked();
    fingerprint_ = fingerprint;
    offer_areas_.assign(slots, -1);
    for (vendor::VendorId v = 0; v < spec.catalog.num_vendors(); ++v) {
      for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
        const auto rc = static_cast<dfg::ResourceClass>(cls);
        if (spec.catalog.offers(v, rc)) {
          offer_areas_[static_cast<std::size_t>(v) * dfg::kNumResourceClasses +
                       static_cast<std::size_t>(cls)] =
              spec.catalog.offer(v, rc).area;
        }
      }
    }
  }
  // Seal: canonical order by content, not by recording interleaving —
  // (combo cost, epoch, ctx, literals, guard) is a pure function of the
  // deterministic set of finalized recordings, so every run (and every
  // thread count) imports the identical frozen tier.
  frozen_.reserve(frozen_.size() + pending_.size());
  std::move(pending_.begin(), pending_.end(), std::back_inserter(frozen_));
  pending_.clear();
  pending_.shrink_to_fit();
  std::sort(frozen_.begin(), frozen_.end(),
            [](const Stored& a, const Stored& b) {
              if (a.combo_cost != b.combo_cost) {
                return a.combo_cost < b.combo_cost;
              }
              if (a.epoch != b.epoch) return a.epoch < b.epoch;
              if (a.ctx != b.ctx) return a.ctx < b.ctx;
              if (a.nogood != b.nogood) return nogood_less(a.nogood, b.nogood);
              return guard_key(a.guard) < guard_key(b.guard);
            });
  frozen_.erase(std::unique(frozen_.begin(), frozen_.end(),
                            [](const Stored& a, const Stored& b) {
                              return a.nogood == b.nogood &&
                                     guard_key(a.guard) == guard_key(b.guard);
                            }),
                frozen_.end());
  if (frozen_.size() > kSealCap) frozen_.resize(kSealCap);
  return ++epoch_;
}

void NogoodStore::record(std::vector<CspNogood> learned,
                         const PaletteSignature& sig, std::uint64_t epoch,
                         std::uint64_t ctx, long long combo_cost) {
  if (learned.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (epoch != epoch_) return;  // late recording from a superseded op
  // Plain push_back (geometric growth): an exact-fit reserve here would
  // reallocate the whole pending tier on every record call — quadratic on
  // operations that refute thousands of palettes.
  for (CspNogood& nogood : learned) {
    pending_.push_back(Stored{std::move(nogood), sig, epoch, ctx, combo_cost});
  }
}

void NogoodStore::collect_frozen(const PaletteSignature& sig,
                                 std::uint64_t epoch,
                                 std::vector<CspNogood>* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // The adopted base tier is sealed by construction, so it is visible to
  // every epoch; its stored order is canonical, keeping imports
  // deterministic for any engine that adopted the same snapshot.
  if (base_ != nullptr) {
    for (const SealedNogood& sealed : base_->entries) {
      if (signature_dominates(sealed.guard, sig)) {
        out->push_back(sealed.nogood);
      }
    }
  }
  for (const Stored& stored : frozen_) {
    if (stored.epoch >= epoch) continue;  // not sealed: invisible
    if (signature_dominates(stored.guard, sig)) {
      out->push_back(stored.nogood);
    }
  }
}

void NogoodStore::finalize_context(std::uint64_t epoch, std::uint64_t ctx,
                                   long long keep_below) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::erase_if(pending_, [&](const Stored& stored) {
    return stored.epoch == epoch && stored.ctx == ctx &&
           stored.combo_cost >= keep_below;
  });
}

std::size_t NogoodStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t base = base_ != nullptr ? base_->entries.size() : 0;
  return base + frozen_.size() + pending_.size();
}

void NogoodStore::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  clear_locked();
}

void NogoodStore::clear_locked() {
  base_.reset();  // an incompatible spec family drops the adopted tier too
  frozen_.clear();
  pending_.clear();
}

void NogoodStore::adopt(std::shared_ptr<const NogoodSnapshot> base) {
  std::lock_guard<std::mutex> lock(mutex_);
  clear_locked();
  base_ = std::move(base);
  if (base_ != nullptr) {
    fingerprint_ = base_->fingerprint;
    offer_areas_ = base_->offer_areas;
  } else {
    fingerprint_ = 0;
    offer_areas_.clear();
  }
}

NogoodSnapshot NogoodStore::export_delta() const {
  std::lock_guard<std::mutex> lock(mutex_);
  NogoodSnapshot delta;
  delta.fingerprint = fingerprint_;
  delta.offer_areas = offer_areas_;
  delta.entries.reserve(frozen_.size() + pending_.size());
  for (const Stored& stored : frozen_) {
    delta.entries.push_back(
        SealedNogood{stored.nogood, stored.guard, stored.combo_cost});
  }
  // pending_ has been pruned by finalize_context() to the deterministically
  // dispatched prefix, same argument as SearchCache::export_delta.
  for (const Stored& stored : pending_) {
    delta.entries.push_back(
        SealedNogood{stored.nogood, stored.guard, stored.combo_cost});
  }
  canonicalize_sealed_nogoods(&delta.entries);
  return delta;
}

}  // namespace ht::core
