// Cross-palette nogood store for the conflict-directed CSP search.
//
// The CSP learns nogoods — small conjunctions of (copy, cycle, vendor)
// assignments no solution satisfies — while solving one palette. A nogood
// is a deduction from the *spec plus the bounds and palette it was proved
// under*, not from the palette alone: removing vendors or tightening
// λ/area only removes candidate solutions (the same monotonicity lemma the
// SearchCache rests on), so a nogood proved under signature G holds for
// every query signature G dominates. The store keeps each nogood with its
// guard signature and hands a palette solve exactly the nogoods whose
// guards dominate it.
//
// Determinism contract, mirroring SearchCache: solvers only ever *import*
// the frozen tier — entries sealed by a previous engine operation
// (begin_op) — in a canonical sealed order, so every thread count and
// every dispatch interleaving sees the same imported set. Entries recorded
// during an operation become importable only after the next begin_op, and
// finalize_context() first prunes them to the deterministically-dispatched
// prefix (combo cost below the operation's final incumbent), exactly like
// the dominance cache. Record only from deterministic solve outcomes
// (feasible / infeasible / node-limit); timeout or cancellation truncates
// learning at a wall-clock-dependent point and must be dropped.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/search_cache.hpp"

namespace ht::core {

/// One sealed guarded nogood, stripped of epoch/ctx scoping (snapshot
/// entries are sealed before any operation that imports them).
struct SealedNogood {
  CspNogood nogood;
  PaletteSignature guard;
  long long combo_cost = 0;
};

/// Immutable always-sealed nogood tier shared read-only between concurrent
/// engines serving the same spec family. Entries are kept in the canonical
/// sealed order (cost, literals, guard), deduped and capped exactly like
/// NogoodStore's own frozen tier, so imports stay deterministic.
struct NogoodSnapshot {
  std::uint64_t fingerprint = 0;       ///< spec_family_fingerprint
  std::vector<long long> offer_areas;  ///< union layout, -1 = unseen
  std::vector<SealedNogood> entries;
};

/// Sorts `entries` canonically, drops duplicate (nogood, guard) pairs and
/// caps the result at NogoodStore's seal cap — the same rule begin_op()
/// applies when sealing, shared with snapshot merges.
void canonicalize_sealed_nogoods(std::vector<SealedNogood>* entries);

/// Thread-safe store of palette-guarded nogoods, scoped to one spec family
/// (same fingerprint discipline as SearchCache::begin_op).
class NogoodStore {
 public:
  NogoodStore() = default;

  /// Marks the start of a public engine operation: seals everything
  /// recorded so far into the frozen tier (canonically ordered, deduped,
  /// capped) and drops the store when `spec` is structurally incompatible
  /// with the family the nogoods were proved under. Not thread-safe:
  /// public engine operations are serialized. Returns the new epoch.
  std::uint64_t begin_op(const ProblemSpec& spec);

  /// Records nogoods learned while solving a palette with signature `sig`,
  /// tagged with the producing operation's epoch, sub-search context, and
  /// the license cost of the palette tuple (for finalize pruning).
  void record(std::vector<CspNogood> learned, const PaletteSignature& sig,
              std::uint64_t epoch, std::uint64_t ctx, long long combo_cost);

  /// Appends to `out` every frozen nogood (sealed before `epoch`) whose
  /// guard dominates `sig`, in sealed order. This is the only read the
  /// dispatch path may use.
  void collect_frozen(const PaletteSignature& sig, std::uint64_t epoch,
                      std::vector<CspNogood>* out) const;

  /// Drops this context's entries with combo cost >= keep_below — the part
  /// of the operation's learning whose dispatch is not guaranteed in every
  /// run. Call once per sub-search, after its workers have joined.
  void finalize_context(std::uint64_t epoch, std::uint64_t ctx,
                        long long keep_below);

  /// Installs `base` as an always-sealed read-only tier underneath this
  /// store (collect_frozen scans it first, in its stored canonical order),
  /// dropping everything the store held before and adopting the base's
  /// family fingerprint and offer-area layout. nullptr resets to cold.
  /// Not thread-safe: call between engine operations only.
  void adopt(std::shared_ptr<const NogoodSnapshot> base);

  /// Exports the store's *own* surviving entries (frozen + pending, base
  /// excluded) canonicalized. Call after finalize_context().
  NogoodSnapshot export_delta() const;

  /// The frozen-tier size cap sealing and snapshot merges share.
  static constexpr std::size_t seal_cap() { return kSealCap; }

  std::size_t size() const;
  void clear();

 private:
  struct Stored {
    CspNogood nogood;
    PaletteSignature guard;
    std::uint64_t epoch = 0;
    std::uint64_t ctx = 0;
    long long combo_cost = 0;
  };

  /// Frozen-tier size cap: sealing keeps the canonically-first entries so
  /// the imported set stays bounded and identical across runs.
  static constexpr std::size_t kSealCap = 4096;

  void clear_locked();

  mutable std::mutex mutex_;
  /// Sealed tier (≤ kSealCap, immutable between begin_op calls): the only
  /// tier collect_frozen scans, so dispatch-path reads stay O(kSealCap)
  /// no matter how much the current operation records.
  std::vector<Stored> frozen_;
  /// Recordings of the current operation; merged into frozen_ (sorted,
  /// deduped, capped) by the next begin_op.
  std::vector<Stored> pending_;
  /// Adopted always-sealed tier (see adopt()); nullptr when running cold.
  std::shared_ptr<const NogoodSnapshot> base_;
  std::uint64_t epoch_ = 0;
  std::uint64_t fingerprint_ = 0;  ///< 0 = no family adopted yet
  /// Offer areas seen so far (vendor * kNumResourceClasses + cls -> area,
  /// -1 = unseen), unioned across operations like SearchCache's.
  std::vector<long long> offer_areas_;
};

}  // namespace ht::core
