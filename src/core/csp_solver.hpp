// Complete scheduler/binder over a fixed vendor palette, with
// conflict-directed search.
//
// Given a ProblemSpec and, per resource class, the set ("palette") of
// vendors whose licenses the design may use, this solver decides whether a
// schedule + binding exists that satisfies *all* constraints — dependence
// order, latency windows, every vendor-diversity rule, per-instance
// exclusivity and the area bound — and produces one if so.
//
// It is a classic CSP search: one variable per operation copy (NC/RC and,
// when enabled, recovery), values are (cycle, vendor) pairs, instances are
// never branched on because instances of one (vendor, class) offer are
// interchangeable — a per-cycle usage count plus a running peak is enough,
// and instance indices are assigned after the fact. Propagation maintains
// per-copy cycle windows (ASAP/ALAP tightened by assigned same-schedule
// neighbors) and per-copy forbidden-vendor counts from the conflict graph.
//
// On top of the chronological core the search is conflict-directed (see
// DESIGN.md "Conflict-directed CSP search"):
//
//  * conflict-directed backjumping — every domain wipeout carries the set
//    of assigned copies actually responsible, and backtracking unwinds
//    straight past decisions that set is independent of;
//  * nogood learning — small conflict sets are recorded as (copy, cycle,
//    vendor) nogoods, re-checked during the same solve and exportable via
//    CspResult::learned for reuse against sibling palettes (core/nogood.hpp
//    guards them with the palette signature they were proved under);
//  * Luby restarts — with restart_base > 0 the search restarts on a Luby
//    schedule, re-descending with a seed-dependent vendor preference while
//    keeping everything it has learned (first descent always canonical);
//  * deterministic subtree splitting — with subtree_split > 1 the root
//    decision level is partitioned into disjoint value blocks solved
//    independently (optionally on a thread pool); the committed result is
//    the lowest-index solved block, so any lane count is bit-identical to
//    sequential execution.
//
// Within its node budget the search is complete: kInfeasible is a proof.
// Backjumps skip only regions a recorded conflict set proves solution-free
// and learned nogoods are sound deductions from the spec, so completeness
// (and the identity of the first solution found) is preserved. The exact
// optimizer exploits this for cheapest-first license enumeration; the
// heuristic optimizer runs it with small budgets and restarts.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/solution.hpp"
#include "util/thread_pool.hpp"

namespace ht::core {

/// One literal of a nogood: "copy is assigned vendor `vendor` at a cycle
/// in [cycle_lo, cycle_hi]". Copies index the solver's variable order
/// (kind-major, op-minor — a pure function of the spec, never of the
/// palette), so literals are meaningful across palettes of one spec family.
struct NogoodLit {
  int copy = 0;
  int vendor = 0;
  int cycle_lo = 0;
  int cycle_hi = 0;

  bool operator==(const NogoodLit&) const = default;
};

/// A conjunction of literals that no solution satisfies. Learned under some
/// palette/bounds; core/nogood.hpp attaches the guard signature that scopes
/// where it may be reused.
struct CspNogood {
  std::vector<NogoodLit> lits;

  bool operator==(const CspNogood&) const = default;
};

/// The one per-palette seed schedule every stochastic component draws
/// from. `palette_seed(seed, k)` is a SplitMix64-style mix of the request
/// seed with stream index `k`; streams are statistically independent and a
/// pure function of (seed, k), never of evaluation order or thread count.
/// Consumers and their stream indices:
///
///  * the engine's greedy warm-up and the heuristic CSP restart rotation
///    use k = palette_index + 1 (the full-market probe is palette -1,
///    hence the shift) — so every license set gets its own phase schedule
///    instead of the historical single request-wide seed;
///  * the SLS binder (core/sls_binder.hpp) uses k = restart + 1 on a
///    member-salted seed;
///  * the exact CSP path keeps CspOptions::seed = 0 (no restarts are
///    scheduled there, and seed 0 keeps every descent canonical).
inline std::uint64_t palette_seed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

struct CspOptions {
  long max_nodes = 500'000;
  double time_limit_seconds = 10.0;
  /// Restart phase selection: descents after the first reorder value
  /// enumeration with a seed-dependent vendor preference (seed 0 keeps the
  /// canonical (area_delta, cycle, vendor) order on every descent). Has no
  /// effect unless restart_base > 0 — in particular the first descent, and
  /// therefore any run without restarts, is canonical for every seed.
  std::uint64_t seed = 0;
  /// Optional cooperative stop signal, polled inside the node loop (same
  /// cadence as the time check). A cancelled run reports kCancelled and
  /// proves nothing.
  const util::CancelToken* cancel = nullptr;

  /// Conflict-directed mode: backjumping + nogood recording. Off reproduces
  /// the chronological search node for node (A/B baselines).
  bool learning = true;
  /// Luby restart unit in nodes; 0 disables restarts. Segment i of a solve
  /// gets restart_base * luby(i) nodes before the search re-descends.
  long restart_base = 0;
  /// Split the root decision level into (up to) this many disjoint value
  /// blocks solved independently; <= 1 solves in one piece. The block
  /// decomposition depends only on the spec and palette, never on lanes.
  int subtree_split = 1;
  /// Execution lanes for subtree blocks (1 = sequential). Any value yields
  /// bit-identical results: the winner is the lowest-index solved block.
  int split_threads = 1;
  /// Nogoods proved applicable to this palette by the caller (frozen tier
  /// of a NogoodStore); checked during search exactly like learned ones.
  const std::vector<CspNogood>* imported = nullptr;
  /// Two-watched-literal nogood propagation (learning mode only). Each
  /// stored nogood watches two of its literals, indexed by (copy, vendor)
  /// buckets, so a candidate assignment visits only the nogoods whose
  /// watches it could complete instead of scanning every nogood containing
  /// the copy. When a visit detects a completion the solver re-derives the
  /// conflict set with the reference scan, so search trees — nodes,
  /// backjumps, learned nogoods, first solution — are bit-identical to
  /// scan mode. Off falls back to the scan-all check (A/B baselines).
  bool nogood_watch = true;
  /// Flat structure-of-arrays inner loop. On, the solver runs the packed
  /// hot path: true-literal-counter nogood propagation (per-(copy, vendor)
  /// buckets of packed cycle ranges replace the watched-literal index, with
  /// completions re-derived by the reference scan) and packed-key variable
  /// selection. Off runs the legacy watched/scan machinery. Either way the
  /// search tree — nodes, backjumps, statuses, costs, learned nogoods — is
  /// bit-identical; the gate exists for A/B verification (EngineFlatStateTest,
  /// the bench flat_ab section) until the legacy side is retired. Solves
  /// whose lambda or copy count exceed the packed-representation guards
  /// (util/mask_kernels.hpp) silently run the legacy path.
  bool flat_state = true;
};

struct CspResult {
  enum class Status {
    kFeasible,    ///< solution found (and validated by the caller)
    kInfeasible,  ///< proof: no solution exists under this palette
    kNodeLimit,   ///< gave up; nothing proved
    kTimeout,     ///< gave up; nothing proved
    kCancelled,   ///< stopped by the cancel token; nothing proved
  };
  Status status = Status::kNodeLimit;
  Solution solution;
  long nodes = 0;
  long backjumps = 0;  ///< frames skipped past by conflict-directed jumps
  long restarts = 0;   ///< Luby re-descents taken
  /// Propagation-index entries examined by the nogood propagator: watched-
  /// literal bucket entries in legacy watch mode, counter-bucket entries in
  /// flat mode (0 with learning off or with plain scan propagation). The
  /// scan these replace examined every nogood containing the candidate's
  /// copy.
  long watch_visits = 0;
  /// Nogoods learned this solve (empty with learning off). Deterministic
  /// for kFeasible / kInfeasible / kNodeLimit outcomes; cleared for
  /// timeout / cancellation, whose truncation point is wall-clock-dependent
  /// and must never leak into deterministic state.
  std::vector<CspNogood> learned;
};

/// One vendor palette per resource class (indexed by ResourceClass value).
using Palettes = std::array<std::vector<vendor::VendorId>, dfg::kNumResourceClasses>;

CspResult schedule_and_bind(const ProblemSpec& spec, const Palettes& palettes,
                            const CspOptions& options = {});

}  // namespace ht::core
