// Complete backtracking scheduler/binder over a fixed vendor palette.
//
// Given a ProblemSpec and, per resource class, the set ("palette") of
// vendors whose licenses the design may use, this solver decides whether a
// schedule + binding exists that satisfies *all* constraints — dependence
// order, latency windows, every vendor-diversity rule, per-instance
// exclusivity and the area bound — and produces one if so.
//
// It is a classic CSP search: one variable per operation copy (NC/RC and,
// when enabled, recovery), values are (cycle, vendor) pairs, instances are
// never branched on because instances of one (vendor, class) offer are
// interchangeable — a per-cycle usage count plus a running peak is enough,
// and instance indices are assigned after the fact. Propagation maintains
// per-copy cycle windows (ASAP/ALAP tightened by assigned same-schedule
// neighbors) and per-copy forbidden-vendor counts from the conflict graph.
//
// Within its node budget the search is complete: kInfeasible is a proof.
// The exact optimizer exploits this for cheapest-first license enumeration;
// the heuristic optimizer runs it with small budgets and random restarts.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/solution.hpp"
#include "util/thread_pool.hpp"

namespace ht::core {

struct CspOptions {
  long max_nodes = 500'000;
  double time_limit_seconds = 10.0;
  /// Retained for API compatibility; ignored. The old randomized value
  /// tiebreak only acted on collisions of a packed ordering key that
  /// aliased vendor into cycle (v >= 8) — on every catalog this repo ships
  /// the keys were unique, so seeded runs already explored the identical
  /// tree. Value ordering is now fully deterministic:
  /// (area_delta, cycle, vendor).
  std::uint64_t seed = 0;
  /// Optional cooperative stop signal, polled inside the node loop (same
  /// cadence as the time check). A cancelled run reports kCancelled and
  /// proves nothing.
  const util::CancelToken* cancel = nullptr;
};

struct CspResult {
  enum class Status {
    kFeasible,    ///< solution found (and validated by the caller)
    kInfeasible,  ///< proof: no solution exists under this palette
    kNodeLimit,   ///< gave up; nothing proved
    kTimeout,     ///< gave up; nothing proved
    kCancelled,   ///< stopped by the cancel token; nothing proved
  };
  Status status = Status::kNodeLimit;
  Solution solution;
  long nodes = 0;
};

/// One vendor palette per resource class (indexed by ResourceClass value).
using Palettes = std::array<std::vector<vendor::VendorId>, dfg::kNumResourceClasses>;

CspResult schedule_and_bind(const ProblemSpec& spec, const Palettes& palettes,
                            const CspOptions& options = {});

}  // namespace ht::core
