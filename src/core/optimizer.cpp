// Legacy entry points, kept as thin wrappers over the SynthesisEngine so
// existing callers (tests, benches, examples) compile and behave the same.
// The search itself — including the parallel license-set driver — lives in
// core/engine.cpp.
#include "core/optimizer.hpp"

#include "core/engine.hpp"

namespace ht::core {

std::string to_string(OptStatus status) {
  switch (status) {
    case OptStatus::kOptimal:
      return "optimal";
    case OptStatus::kFeasible:
      return "feasible";
    case OptStatus::kInfeasible:
      return "infeasible";
    case OptStatus::kUnknown:
      return "unknown";
  }
  return "?";
}

OptimizeResult minimize_cost(const ProblemSpec& spec,
                             const OptimizerOptions& options) {
  SynthesisEngine engine(make_request(spec, options));
  return engine.minimize();
}

SplitResult minimize_cost_total_latency(const ProblemSpec& base,
                                        int lambda_total,
                                        const OptimizerOptions& options) {
  SynthesisEngine engine(make_request(base, options));
  return engine.minimize_total_latency(lambda_total);
}

}  // namespace ht::core
