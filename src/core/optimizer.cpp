#include "core/optimizer.hpp"

#include <algorithm>

#include "core/greedy.hpp"
#include "core/palette.hpp"
#include "core/rules.hpp"
#include "dfg/analysis.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace ht::core {
namespace {

/// Complete (proof-preserving) area precheck for one license set: every
/// class needs enough core instances for its densest phase, and each
/// instance costs at least the smallest area in the class palette.
bool area_lower_bound_exceeds(const ProblemSpec& spec,
                              const Palettes& palettes) {
  const auto op_counts = spec.graph.ops_per_class();
  long long area_lb = 0;
  for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    if (op_counts[cls] == 0) continue;
    const auto rc = static_cast<dfg::ResourceClass>(cls);
    // Instance-cycle demand: each op occupies its instance for the class
    // latency.
    const int lat = spec.class_latency[static_cast<std::size_t>(cls)];
    int needed = (2 * op_counts[cls] * lat + spec.lambda_detection - 1) /
                 spec.lambda_detection;
    if (spec.with_recovery) {
      needed = std::max(needed,
                        (op_counts[cls] * lat + spec.lambda_recovery - 1) /
                            spec.lambda_recovery);
    }
    long long min_area = 0;
    for (vendor::VendorId v : palettes[static_cast<std::size_t>(cls)]) {
      const long long area = spec.catalog.offer(v, rc).area;
      if (min_area == 0 || area < min_area) min_area = area;
    }
    area_lb += static_cast<long long>(needed) * min_area;
  }
  return area_lb > spec.area_limit;
}

}  // namespace

std::string to_string(OptStatus status) {
  switch (status) {
    case OptStatus::kOptimal:
      return "optimal";
    case OptStatus::kFeasible:
      return "feasible";
    case OptStatus::kInfeasible:
      return "infeasible";
    case OptStatus::kUnknown:
      return "unknown";
  }
  return "?";
}

OptimizeResult minimize_cost(const ProblemSpec& spec,
                             const OptimizerOptions& options) {
  spec.validate();
  util::Timer timer;
  OptimizeResult result;

  // Latency bounds below the (weighted) critical path are a proof of
  // infeasibility.
  try {
    const std::vector<int> latencies = spec.op_latencies();
    (void)dfg::alap_levels(spec.graph, spec.lambda_detection, latencies);
    if (spec.with_recovery) {
      (void)dfg::alap_levels(spec.graph, spec.lambda_recovery, latencies);
    }
  } catch (const util::InfeasibleError&) {
    result.status = OptStatus::kInfeasible;
    result.stats.seconds = timer.elapsed_seconds();
    return result;
  }

  const auto min_sizes = min_vendors_per_class(spec);
  // A class whose conflict clique needs more vendors than the market
  // offers is a proof of infeasibility (e.g. recovery on a 2-vendor
  // market: the NC/RC/recovery triangle needs 3).
  for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    const auto rc = static_cast<dfg::ResourceClass>(cls);
    if (spec.graph.ops_per_class()[cls] == 0) continue;
    if (spec.catalog.num_vendors_offering(rc) < min_sizes[cls]) {
      result.status = OptStatus::kInfeasible;
      result.stats.seconds = timer.elapsed_seconds();
      return result;
    }
  }
  ComboQueue queue(enumerate_palettes(spec, min_sizes));

  bool have_incumbent = false;
  long long cheapest_unknown = -1;  // -1: none
  bool combos_exhausted = false;

  Palettes palettes;
  long long combo_cost = 0;
  while (true) {
    if (!queue.next(palettes, combo_cost)) {
      combos_exhausted = true;
      break;
    }
    if (have_incumbent && combo_cost >= result.cost) {
      // Every remaining set costs at least as much as the incumbent.
      combos_exhausted = true;
      break;
    }
    if (timer.elapsed_seconds() > options.time_limit_seconds ||
        result.stats.combos_tried >= options.max_combos) {
      break;
    }

    if (area_lower_bound_exceeds(spec, palettes)) {
      ++result.stats.combos_skipped_by_bound;
      continue;  // complete proof, not an unknown
    }
    ++result.stats.combos_tried;

    const double remaining =
        options.time_limit_seconds - timer.elapsed_seconds();
    bool combo_unknown = false;
    CspResult csp;
    if (options.strategy == Strategy::kExact) {
      // Cheap primal attempt first: a greedy success avoids the full CSP
      // for this license set (feasibility is feasibility).
      csp.status = CspResult::Status::kNodeLimit;
      util::Rng greedy_rng(options.seed +
                           static_cast<std::uint64_t>(
                               result.stats.combos_tried));
      for (int attempt = 0; attempt < 4 * options.heuristic_restarts;
           ++attempt) {
        const std::optional<Solution> constructed =
            greedy_construct(spec, palettes, greedy_rng);
        if (constructed) {
          csp.status = CspResult::Status::kFeasible;
          csp.solution = *constructed;
          break;
        }
      }
      if (csp.status != CspResult::Status::kFeasible) {
        CspOptions csp_options;
        csp_options.max_nodes = options.csp_node_limit;
        csp_options.time_limit_seconds = std::max(0.1, remaining);
        csp_options.seed = 0;
        csp = schedule_and_bind(spec, palettes, csp_options);
        result.stats.csp_nodes += csp.nodes;
      }
      combo_unknown = csp.status == CspResult::Status::kNodeLimit ||
                      csp.status == CspResult::Status::kTimeout;
    } else {
      // Greedy constructor first: coloring + list scheduling is near-free
      // and succeeds on most feasible license sets.
      csp.status = CspResult::Status::kNodeLimit;
      util::Rng greedy_rng(options.seed * 0x9e3779b9ull +
                           static_cast<std::uint64_t>(
                               result.stats.combos_tried));
      for (int attempt = 0; attempt < 4 * options.heuristic_restarts;
           ++attempt) {
        const std::optional<Solution> constructed =
            greedy_construct(spec, palettes, greedy_rng);
        if (constructed) {
          csp.status = CspResult::Status::kFeasible;
          csp.solution = *constructed;
          break;
        }
      }
      // Fall back to budgeted CSP restarts; an infeasibility proof from
      // any restart is still a proof (the search is complete, just capped).
      if (csp.status != CspResult::Status::kFeasible) {
        for (int restart = 0; restart < options.heuristic_restarts;
             ++restart) {
          CspOptions csp_options;
          csp_options.max_nodes = options.heuristic_node_limit;
          csp_options.time_limit_seconds = std::max(0.1, remaining);
          csp_options.seed =
              options.seed + static_cast<std::uint64_t>(restart);
          const CspResult attempt =
              schedule_and_bind(spec, palettes, csp_options);
          result.stats.csp_nodes += attempt.nodes;
          if (attempt.status == CspResult::Status::kFeasible ||
              attempt.status == CspResult::Status::kInfeasible) {
            csp = attempt;
            break;
          }
          csp = attempt;
        }
      }
      combo_unknown = csp.status == CspResult::Status::kNodeLimit ||
                      csp.status == CspResult::Status::kTimeout;
    }

    if (csp.status == CspResult::Status::kFeasible) {
      require_valid(spec, csp.solution);
      const long long actual_cost = csp.solution.license_cost(spec);
      if (!have_incumbent || actual_cost < result.cost) {
        have_incumbent = true;
        result.solution = csp.solution;
        result.cost = actual_cost;
        util::log_debug("optimizer: incumbent $" +
                        std::to_string(actual_cost) + " after " +
                        std::to_string(result.stats.combos_tried) +
                        " license sets");
      }
      // Loop continues; the cost test at the top terminates as soon as the
      // queue's next set cannot beat the incumbent.
    } else if (combo_unknown) {
      ++result.stats.unknown_combos;
      if (cheapest_unknown < 0 || combo_cost < cheapest_unknown) {
        cheapest_unknown = combo_cost;
      }
    }
  }

  result.stats.seconds = timer.elapsed_seconds();
  if (have_incumbent) {
    const bool proven = combos_exhausted &&
                        (cheapest_unknown < 0 ||
                         cheapest_unknown >= result.cost);
    result.status = proven ? OptStatus::kOptimal : OptStatus::kFeasible;
  } else if (combos_exhausted && result.stats.unknown_combos == 0) {
    result.status = OptStatus::kInfeasible;
  } else {
    result.status = OptStatus::kUnknown;
  }
  util::log_debug("optimizer: " + to_string(result.status) + " on '" +
                  spec.graph.name() + "' after " +
                  std::to_string(result.stats.combos_tried) +
                  " license sets, " +
                  std::to_string(result.stats.csp_nodes) + " CSP nodes, " +
                  util::format_double(result.stats.seconds, 3) + "s");
  return result;
}

SplitResult minimize_cost_total_latency(const ProblemSpec& base,
                                        int lambda_total,
                                        const OptimizerOptions& options) {
  util::check_spec(base.with_recovery,
                   "minimize_cost_total_latency requires recovery mode");
  const int critical_path =
      dfg::critical_path_length(base.graph, base.op_latencies());
  util::check_spec(lambda_total >= 2 * critical_path,
                   "lambda_total below twice the critical path (" +
                       std::to_string(critical_path) +
                       "): no split can schedule both phases");

  SplitResult best;
  bool any_inconclusive = false;
  for (int lambda_det = critical_path;
       lambda_det <= lambda_total - critical_path; ++lambda_det) {
    ProblemSpec spec = base;
    spec.lambda_detection = lambda_det;
    spec.lambda_recovery = lambda_total - lambda_det;
    const OptimizeResult attempt = minimize_cost(spec, options);
    if (attempt.status == OptStatus::kUnknown ||
        (attempt.status == OptStatus::kFeasible)) {
      // A '*' result or no result at all leaves room for a cheaper design
      // under this split.
      any_inconclusive = true;
    }
    const bool better =
        attempt.has_solution() &&
        (!best.result.has_solution() || attempt.cost < best.result.cost ||
         (attempt.cost == best.result.cost &&
          attempt.status == OptStatus::kOptimal &&
          best.result.status != OptStatus::kOptimal));
    if (better) {
      best.result = attempt;
      best.lambda_detection = lambda_det;
      best.lambda_recovery = lambda_total - lambda_det;
    }
  }
  if (!best.result.has_solution()) {
    best.result.status =
        any_inconclusive ? OptStatus::kUnknown : OptStatus::kInfeasible;
  } else if (any_inconclusive &&
             best.result.status == OptStatus::kOptimal) {
    // Optimal for its own split, but some other split was inconclusive, so
    // the row-level minimum is not proved.
    best.result.status = OptStatus::kFeasible;
  }
  return best;
}

}  // namespace ht::core
