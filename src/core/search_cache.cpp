#include "core/search_cache.hpp"

#include <algorithm>
#include <set>

#include "core/rules.hpp"
#include "dfg/analysis.hpp"
#include "obs/trace.hpp"

namespace ht::core {
namespace {

/// FNV-1a over a stream of integers; order-sensitive.
struct Fnv {
  std::uint64_t state = 1469598103934665603ull;
  void mix(long long value) {
    for (int byte = 0; byte < 8; ++byte) {
      state ^= static_cast<std::uint64_t>(value >> (8 * byte)) & 0xffull;
      state *= 1099511628211ull;
    }
  }
};

}  // namespace

// Everything palette-tuple feasibility depends on *except* the bounds in
// the PaletteSignature and which offers exist (existence is handled by the
// per-offer area compatibility check — thinning a catalog does not
// invalidate proofs; see header).
std::uint64_t spec_family_fingerprint(const ProblemSpec& spec) {
  Fnv h;
  const int n = spec.graph.num_ops();
  h.mix(n);
  for (dfg::OpId op = 0; op < n; ++op) {
    h.mix(static_cast<int>(spec.graph.op(op).type));
    for (dfg::OpId parent : spec.graph.parents(op)) h.mix(parent);
    h.mix(-1);  // delimiter
  }
  for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    h.mix(spec.class_latency[static_cast<std::size_t>(cls)]);
  }
  h.mix(spec.with_recovery ? 1 : 0);
  h.mix(spec.max_instances_per_offer);
  h.mix(spec.rules.detection_same_op);
  h.mix(spec.rules.detection_parent_child);
  h.mix(spec.rules.detection_sibling);
  h.mix(spec.rules.sibling_diversity_all_copies);
  h.mix(spec.rules.recovery_same_op);
  h.mix(spec.rules.recovery_close_pairs);
  for (const auto& [a, b] : spec.closely_related) {
    h.mix(a);
    h.mix(b);
  }
  h.mix(spec.catalog.num_vendors());
  return h.state;
}

PaletteSignature signature_of(const ProblemSpec& spec,
                              const Palettes& palettes) {
  PaletteSignature sig;
  for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    std::uint64_t mask = 0;
    for (vendor::VendorId v : palettes[static_cast<std::size_t>(cls)]) {
      mask |= 1ull << v;
    }
    sig.masks[static_cast<std::size_t>(cls)] = mask;
  }
  sig.lambda_detection = spec.lambda_detection;
  sig.lambda_recovery = spec.with_recovery ? spec.lambda_recovery : 0;
  sig.area_limit = spec.area_limit;
  return sig;
}

bool signature_dominates(const PaletteSignature& entry,
                         const PaletteSignature& query) {
  // The entry was proved under *more* resources (superset palettes, looser
  // bounds); the query has no more, so it inherits the proof.
  if (entry.lambda_detection < query.lambda_detection) return false;
  if (entry.lambda_recovery < query.lambda_recovery) return false;
  if (entry.area_limit < query.area_limit) return false;
  for (std::size_t cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    if ((query.masks[cls] & ~entry.masks[cls]) != 0) return false;
  }
  return true;
}

namespace {

/// Total lexicographic order over signatures; any fixed total order works
/// for canonicalization, this one matches the field declaration order.
bool signature_less(const PaletteSignature& a, const PaletteSignature& b) {
  for (std::size_t cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    if (a.masks[cls] != b.masks[cls]) return a.masks[cls] < b.masks[cls];
  }
  if (a.lambda_detection != b.lambda_detection) {
    return a.lambda_detection < b.lambda_detection;
  }
  if (a.lambda_recovery != b.lambda_recovery) {
    return a.lambda_recovery < b.lambda_recovery;
  }
  return a.area_limit < b.area_limit;
}

}  // namespace

bool cache_proof_less(const CacheProof& a, const CacheProof& b) {
  if (a.combo_cost != b.combo_cost) return a.combo_cost < b.combo_cost;
  return signature_less(a.sig, b.sig);
}

// Same keep-first antichain rule as SearchCache::compact_frozen; verdicts
// are unchanged because every dropped proof's dominator survives.
void compact_cache_proofs(std::vector<CacheProof>* proofs) {
  std::vector<CacheProof>& entries = *proofs;
  std::vector<char> drop(entries.size(), 0);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (std::size_t j = 0; j < entries.size(); ++j) {
      if (j == i || drop[j]) continue;
      if (!signature_dominates(entries[j].sig, entries[i].sig)) continue;
      if (signature_dominates(entries[i].sig, entries[j].sig) && i < j) {
        continue;
      }
      drop[i] = 1;
      break;
    }
  }
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (!drop[i]) entries[out++] = entries[i];
  }
  entries.resize(out);
}

std::uint64_t SearchCache::begin_op(const ProblemSpec& spec) {
  HT_TRACE_SPAN("cache/begin_op");
  const std::uint64_t fingerprint = spec_family_fingerprint(spec);
  bool compatible = fingerprint == fingerprint_;
  const std::size_t slots =
      static_cast<std::size_t>(spec.catalog.num_vendors()) *
      dfg::kNumResourceClasses;
  if (compatible) {
    for (vendor::VendorId v = 0; v < spec.catalog.num_vendors(); ++v) {
      for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
        const auto rc = static_cast<dfg::ResourceClass>(cls);
        if (!spec.catalog.offers(v, rc)) continue;
        long long& seen =
            offer_areas_[static_cast<std::size_t>(v) *
                             dfg::kNumResourceClasses +
                         static_cast<std::size_t>(cls)];
        const long long area = spec.catalog.offer(v, rc).area;
        if (seen < 0) {
          seen = area;  // first sighting of this offer in the family
        } else if (seen != area) {
          compatible = false;
        }
      }
    }
  }
  if (!compatible) {
    clear();
    fingerprint_ = fingerprint;
    offer_areas_.assign(slots, -1);
    for (vendor::VendorId v = 0; v < spec.catalog.num_vendors(); ++v) {
      for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
        const auto rc = static_cast<dfg::ResourceClass>(cls);
        if (spec.catalog.offers(v, rc)) {
          offer_areas_[static_cast<std::size_t>(v) *
                           dfg::kNumResourceClasses +
                       static_cast<std::size_t>(cls)] =
              spec.catalog.offer(v, rc).area;
        }
      }
    }
  }
  // Seal: everything recorded so far now has an epoch strictly below the
  // new operation's, so fold the live flood into the frozen antichain and
  // compact it once. This is the only place the O(n^2) dominance sweep
  // runs — once per public operation, never on the dispatch path.
  for (Shard& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    shard.frozen.insert(shard.frozen.end(), shard.live.begin(),
                        shard.live.end());
    shard.live.clear();
    compact_frozen(shard.frozen);
  }
  return ++epoch_;
}

bool SearchCache::entry_dominates(const Entry& entry,
                                  const PaletteSignature& q) {
  return signature_dominates(entry.sig, q);
}

int SearchCache::shard_of(const PaletteSignature& sig) const {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    h = (h ^ sig.masks[cls]) * 1099511628211ull;
  }
  return static_cast<int>(h % kShards);
}

void SearchCache::record(const PaletteSignature& sig, std::uint64_t epoch,
                         std::uint64_t ctx, long long combo_cost) {
  obs::trace_instant("cache/record", "cost", combo_cost);
  Shard& shard = shards_[static_cast<std::size_t>(shard_of(sig))];
  std::unique_lock<std::shared_mutex> lock(shard.mutex);
  // Plain O(1) append into the live tier: record sits right after every
  // completed refutation on the dispatch path, so it must not scan the
  // shard (the old dominance-scan-on-insert was the hottest engine-side
  // loop outside the solver). A redundant (dominated) entry changes no
  // query() verdict — whatever it would answer, its dominator answers — so
  // deferring compaction to the next begin_op() seal is sound.
  shard.live.push_back(Entry{sig, combo_cost, epoch, ctx});
}

bool SearchCache::query(const PaletteSignature& sig, std::uint64_t epoch,
                        std::uint64_t ctx, bool frozen_only) const {
  // The adopted base tier is immutable and sealed by construction (it only
  // holds entries that survived a completed operation elsewhere), so it is
  // visible to frozen queries of every epoch without any locking.
  if (base_ != nullptr) {
    for (const CacheProof& proof : base_->proofs) {
      if (signature_dominates(proof.sig, sig)) return true;
    }
  }
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    // Frozen entries were sealed by begin_op(), so entry.epoch < epoch
    // holds for all of them by construction; live entries all carry the
    // current epoch and are visible only to their own context.
    for (const Entry& entry : shard.frozen) {
      if (entry_dominates(entry, sig)) return true;
    }
    if (frozen_only) continue;
    for (const Entry& entry : shard.live) {
      if (entry.epoch == epoch && entry.ctx == ctx &&
          entry_dominates(entry, sig)) {
        return true;
      }
    }
  }
  return false;
}

bool SearchCache::dominated_frozen(const PaletteSignature& sig,
                                   std::uint64_t epoch) const {
  return query(sig, epoch, 0, /*frozen_only=*/true);
}

bool SearchCache::dominated(const PaletteSignature& sig, std::uint64_t epoch,
                            std::uint64_t ctx) const {
  return query(sig, epoch, ctx, /*frozen_only=*/false);
}

// Dominance antichain compaction of the frozen tier: drop an entry when a
// surviving entry dominates it. Frozen entries are all visible to every
// future query, so every query() verdict is unchanged by construction —
// whatever the dropped entry would have answered, its dominator answers.
// The surviving *set* is order-independent for strict dominance (the
// maximal elements survive); mutually dominating pairs have equal
// signatures, so which one the keep-first tie-break retains cannot affect
// any verdict either.
void SearchCache::compact_frozen(std::vector<Entry>& entries) {
  std::vector<char> drop(entries.size(), 0);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (std::size_t j = 0; j < entries.size(); ++j) {
      if (j == i || drop[j]) continue;
      if (!entry_dominates(entries[j], entries[i].sig)) continue;
      if (entry_dominates(entries[i], entries[j].sig) && i < j) continue;
      drop[i] = 1;
      break;
    }
  }
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (!drop[i]) entries[out++] = entries[i];
  }
  entries.resize(out);
}

void SearchCache::finalize_context(std::uint64_t epoch, std::uint64_t ctx,
                                   long long keep_below) {
  HT_TRACE_SPAN("cache/finalize");
  for (Shard& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    std::erase_if(shard.live, [&](const Entry& entry) {
      return entry.epoch == epoch && entry.ctx == ctx &&
             entry.combo_cost >= keep_below;
    });
  }
}

std::size_t SearchCache::size() const {
  std::size_t total = base_ != nullptr ? base_->proofs.size() : 0;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    total += shard.frozen.size() + shard.live.size();
  }
  return total;
}

void SearchCache::clear() {
  base_.reset();  // an incompatible spec family drops the adopted tier too
  for (Shard& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    shard.frozen.clear();
    shard.live.clear();
  }
  std::unique_lock<std::shared_mutex> lock(lp_mutex_);
  lp_bounds_.clear();
}

void SearchCache::adopt(std::shared_ptr<const CacheSnapshot> base) {
  clear();
  base_ = std::move(base);
  if (base_ != nullptr) {
    fingerprint_ = base_->fingerprint;
    offer_areas_ = base_->offer_areas;
  } else {
    fingerprint_ = 0;
    offer_areas_.clear();
  }
}

CacheSnapshot SearchCache::export_delta() const {
  CacheSnapshot delta;
  delta.fingerprint = fingerprint_;
  delta.offer_areas = offer_areas_;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    for (const Entry& entry : shard.frozen) {
      delta.proofs.push_back(CacheProof{entry.sig, entry.combo_cost});
    }
    // The live tier has been pruned by finalize_context() to entries whose
    // queue position is dispatched in every run, so exporting it does not
    // leak thread-count-dependent content into the shared snapshot.
    for (const Entry& entry : shard.live) {
      delta.proofs.push_back(CacheProof{entry.sig, entry.combo_cost});
    }
  }
  std::sort(delta.proofs.begin(), delta.proofs.end(), cache_proof_less);
  compact_cache_proofs(&delta.proofs);
  {
    std::shared_lock<std::shared_mutex> lock(lp_mutex_);
    for (const LpEntry& entry : lp_bounds_) {
      delta.lp_memos.push_back(LpMemo{entry.sig, entry.cost_digest,
                                      entry.bound});
    }
  }
  std::sort(delta.lp_memos.begin(), delta.lp_memos.end(),
            [](const LpMemo& a, const LpMemo& b) {
              if (a.cost_digest != b.cost_digest) {
                return a.cost_digest < b.cost_digest;
              }
              if (a.bound != b.bound) return a.bound < b.bound;
              return signature_less(a.sig, b.sig);
            });
  return delta;
}

namespace {

/// Digest of everything the LP bound prices that the family fingerprint
/// deliberately ignores: which offers exist and what their licenses cost.
std::uint64_t catalog_cost_digest(const ProblemSpec& spec) {
  Fnv h;
  for (vendor::VendorId v = 0; v < spec.catalog.num_vendors(); ++v) {
    for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
      const auto rc = static_cast<dfg::ResourceClass>(cls);
      if (!spec.catalog.offers(v, rc)) {
        h.mix(-1);
        continue;
      }
      h.mix(spec.catalog.offer(v, rc).cost);
    }
  }
  return h.state;
}

bool same_signature(const PaletteSignature& a, const PaletteSignature& b) {
  return a.masks == b.masks && a.lambda_detection == b.lambda_detection &&
         a.lambda_recovery == b.lambda_recovery &&
         a.area_limit == b.area_limit;
}

}  // namespace

bool SearchCache::lp_bound(const ProblemSpec& spec,
                           const PaletteSignature& sig,
                           long long* bound) const {
  const std::uint64_t digest = catalog_cost_digest(spec);
  if (base_ != nullptr) {
    for (const LpMemo& memo : base_->lp_memos) {
      if (memo.cost_digest == digest && same_signature(memo.sig, sig)) {
        *bound = memo.bound;
        return true;
      }
    }
  }
  std::shared_lock<std::shared_mutex> lock(lp_mutex_);
  for (const LpEntry& entry : lp_bounds_) {
    if (entry.cost_digest == digest && same_signature(entry.sig, sig)) {
      *bound = entry.bound;
      return true;
    }
  }
  return false;
}

void SearchCache::store_lp_bound(const ProblemSpec& spec,
                                 const PaletteSignature& sig,
                                 long long bound) {
  const std::uint64_t digest = catalog_cost_digest(spec);
  if (base_ != nullptr) {
    for (const LpMemo& memo : base_->lp_memos) {
      if (memo.cost_digest == digest && same_signature(memo.sig, sig)) {
        return;  // the adopted tier already carries this memo
      }
    }
  }
  std::unique_lock<std::shared_mutex> lock(lp_mutex_);
  for (const LpEntry& entry : lp_bounds_) {
    if (entry.cost_digest == digest && same_signature(entry.sig, sig)) {
      return;  // already priced (bounds are deterministic, values agree)
    }
  }
  lp_bounds_.push_back(LpEntry{sig, digest, bound});
}

// ---- StaticScreens ------------------------------------------------------

StaticScreens::StaticScreens(const ProblemSpec& spec, bool enhanced)
    : spec_(spec), enhanced_(enhanced) {
  op_counts_ = spec.graph.ops_per_class();

  // Phase-density ceilings — the engine's historical (legacy) area
  // precheck: the detection phase schedules two copies of every op, the
  // recovery phase one, and each occupies an instance for the class
  // latency.
  for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    if (op_counts_[cls] == 0) continue;
    const int lat = spec.class_latency[static_cast<std::size_t>(cls)];
    int needed = (2 * op_counts_[cls] * lat + spec.lambda_detection - 1) /
                 spec.lambda_detection;
    if (spec.with_recovery) {
      needed = std::max(needed,
                        (op_counts_[cls] * lat + spec.lambda_recovery - 1) /
                            spec.lambda_recovery);
    }
    min_instances_[static_cast<std::size_t>(cls)] = needed;
  }
  if (!enhanced) return;

  // Occupancy-pressure refinement: within one phase, every op *must* hold
  // an instance throughout [ALAP start, ASAP start + latency - 1]; the
  // peak of that mandatory profile is a lower bound on concurrent
  // instances that phase-density ceilings miss on window-constrained
  // graphs. Detection holds both NC and RC (same windows), hence weight 2.
  const std::vector<int> latencies = spec.op_latencies();
  const auto add_pressure = [&](int lambda, int weight) {
    const std::vector<int> asap = dfg::asap_levels(spec.graph, latencies);
    const std::vector<int> alap =
        dfg::alap_levels(spec.graph, lambda, latencies);
    std::array<std::vector<int>, dfg::kNumResourceClasses> profile;
    for (auto& p : profile) p.assign(static_cast<std::size_t>(lambda) + 1, 0);
    for (dfg::OpId op = 0; op < spec.graph.num_ops(); ++op) {
      const int cls = static_cast<int>(
          dfg::resource_class_of(spec.graph.op(op).type));
      const int lo = alap[static_cast<std::size_t>(op)];
      const int hi = asap[static_cast<std::size_t>(op)] +
                     latencies[static_cast<std::size_t>(op)] - 1;
      for (int t = lo; t <= std::min(hi, lambda); ++t) {
        profile[static_cast<std::size_t>(cls)][static_cast<std::size_t>(t)] +=
            weight;
      }
    }
    for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
      for (int t = 1; t <= lambda; ++t) {
        min_instances_[static_cast<std::size_t>(cls)] = std::max(
            min_instances_[static_cast<std::size_t>(cls)],
            profile[static_cast<std::size_t>(cls)][static_cast<std::size_t>(
                t)]);
      }
    }
  };
  add_pressure(spec.lambda_detection, 2);
  if (spec.with_recovery) add_pressure(spec.lambda_recovery, 1);

  // Greedy conflict cliques for the Hall-style diversity screen. Members
  // of one clique must all receive distinct vendors; the members of any
  // class subset T draw theirs from the union of T's palettes. Per-class
  // clique bounds are already guaranteed by enumerate_palettes' minimum
  // sizes, so the value here is in *cross-class* cliques (e.g. an ALU copy
  // conflicting with adder and multiplier copies).
  const int n = spec.graph.num_ops();
  const std::vector<VendorConflict> conflicts = vendor_conflicts(spec);
  const std::vector<std::vector<int>> adjacency =
      conflict_adjacency(spec, conflicts);
  const auto class_of_copy = [&](int copy) {
    return static_cast<int>(
        dfg::resource_class_of(spec.graph.op(copy % n).type));
  };
  const auto is_adjacent = [&](int a, int b) {
    const auto& list = adjacency[static_cast<std::size_t>(a)];
    return std::find(list.begin(), list.end(), b) != list.end();
  };
  std::vector<int> order;
  for (int c = 0; c < static_cast<int>(adjacency.size()); ++c) {
    if (!adjacency[static_cast<std::size_t>(c)].empty()) order.push_back(c);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const std::size_t da = adjacency[static_cast<std::size_t>(a)].size();
    const std::size_t db = adjacency[static_cast<std::size_t>(b)].size();
    if (da != db) return da > db;
    return a < b;
  });
  std::set<std::vector<int>> seen;
  for (int seed : order) {
    std::vector<int> clique = {seed};
    for (int candidate : order) {
      if (candidate == seed) continue;
      bool compatible = true;
      for (int member : clique) {
        if (!is_adjacent(candidate, member)) {
          compatible = false;
          break;
        }
      }
      if (compatible) clique.push_back(candidate);
    }
    std::vector<int> key = clique;
    std::sort(key.begin(), key.end());
    if (!seen.insert(std::move(key)).second) continue;
    std::array<int, dfg::kNumResourceClasses> counts{};
    for (int member : clique) {
      ++counts[static_cast<std::size_t>(class_of_copy(member))];
    }
    clique_counts_.push_back(counts);
  }
}

bool StaticScreens::refutes(const Palettes& palettes) const {
  std::array<std::uint64_t, dfg::kNumResourceClasses> masks{};
  long long area_lb = 0;
  for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    const std::size_t c = static_cast<std::size_t>(cls);
    if (op_counts_[cls] == 0) continue;
    const auto rc = static_cast<dfg::ResourceClass>(cls);
    const auto& palette = palettes[c];
    long long min_area = 0;
    for (vendor::VendorId v : palette) {
      masks[c] |= 1ull << v;
      const long long area = spec_.catalog.offer(v, rc).area;
      if (min_area == 0 || area < min_area) min_area = area;
    }
    // Area lower bound: every needed concurrent instance costs at least
    // the cheapest-area offer in the class palette.
    area_lb += static_cast<long long>(min_instances_[c]) * min_area;
    if (area_lb > spec_.area_limit) return true;
    // Capacity: concurrent instances are capped per (vendor, class) offer.
    if (enhanced_ &&
        static_cast<long long>(min_instances_[c]) >
            static_cast<long long>(spec_.instance_cap(rc)) *
                static_cast<long long>(palette.size())) {
      return true;
    }
  }
  for (const auto& counts : clique_counts_) {
    for (unsigned subset = 1;
         subset < (1u << dfg::kNumResourceClasses); ++subset) {
      int need = 0;
      std::uint64_t available = 0;
      for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
        if (!(subset & (1u << cls))) continue;
        need += counts[static_cast<std::size_t>(cls)];
        available |= masks[static_cast<std::size_t>(cls)];
      }
      if (need > __builtin_popcountll(available)) return true;
    }
  }
  return false;
}

}  // namespace ht::core
