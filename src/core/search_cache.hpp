// Prune-before-solve machinery for the license-set search.
//
// Two layers, both producing *complete* infeasibility proofs so the
// cheapest-first optimality argument is untouched:
//
//  - SearchCache: a cross-palette infeasibility dominance cache. When the
//    complete CSP (or a static screen) refutes a palette tuple, the tuple's
//    per-class vendor bitmasks plus the latency/area bounds it was refuted
//    under are recorded. A later tuple is skipped when some recorded
//    refutation dominates it: per class the query's mask is a subset of the
//    entry's, and the query's bounds are no looser. This is the CSP
//    monotonicity lemma — removing vendors (or tightening λ/area) only
//    removes values from the search, so infeasibility is inherited.
//    Entries survive across engine operations, which is where the hits
//    come from: within a single cheapest-first sweep a strict subset of a
//    refuted tuple is always *cheaper* and therefore already visited, but
//    reoptimize() (thinned market), repeated minimize() calls, tighter
//    frontier points and λ re-splits re-pose dominated tuples constantly.
//
//  - StaticScreens: pure spec+palette feasibility tests run before any CSP
//    dispatch — an occupancy-pressure area lower bound, a per-class
//    instance-capacity check, and a Hall-style vendor-diversity bound over
//    greedy conflict cliques.
//
// Determinism contract (see DESIGN.md "Pruned license-set search"): skips
// consult only entries *sealed* by a previous engine operation; an
// operation's own entries become skip-visible only after finalize_context()
// prunes them to the deterministically-dispatched prefix (combo cost below
// the final incumbent). Screens are pure functions and need no scoping.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "core/csp_solver.hpp"

namespace ht::core {

/// Everything CSP feasibility of a palette tuple depends on, besides the
/// spec family (graph/rules/latencies/catalog areas) the cache is keyed to.
struct PaletteSignature {
  std::array<std::uint64_t, dfg::kNumResourceClasses> masks{};
  int lambda_detection = 0;
  int lambda_recovery = 0;  ///< 0 when the spec has no recovery phase
  long long area_limit = 0;
};

PaletteSignature signature_of(const ProblemSpec& spec,
                              const Palettes& palettes);

/// True when `entry` (a signature something was proved under) dominates
/// `query`: the entry had at-least-as-loose bounds and per-class superset
/// palettes, so by CSP monotonicity anything infeasible (or any nogood
/// deduced) under the entry carries over to the query.
bool signature_dominates(const PaletteSignature& entry,
                         const PaletteSignature& query);

/// Hashes everything palette-tuple feasibility depends on *except* the
/// latency bounds, the area limit, license costs and which offers exist:
/// those either live in the PaletteSignature (bounds) or are handled by the
/// SearchCache's per-offer area compatibility check. Shared key of the
/// dominance cache and the NogoodStore (core/nogood.hpp).
std::uint64_t spec_family_fingerprint(const ProblemSpec& spec);

/// One sealed infeasibility proof, stripped of epoch/ctx scoping: snapshot
/// entries are by construction sealed before any operation that reads them,
/// so the scoping tags carry no information across engines.
struct CacheProof {
  PaletteSignature sig;
  long long combo_cost = 0;
};

/// One LP lower-bound memo (see SearchCache::lp_bound), snapshot form.
struct LpMemo {
  PaletteSignature sig;
  std::uint64_t cost_digest = 0;
  long long bound = 0;
};

/// Immutable always-sealed cache tier shared read-only between concurrent
/// engines serving the same spec family. Proofs are kept as a compacted
/// dominance antichain in canonical (combo_cost, signature) order so merges
/// are deterministic regardless of which engine produced what.
struct CacheSnapshot {
  std::uint64_t fingerprint = 0;       ///< spec_family_fingerprint
  std::vector<long long> offer_areas;  ///< union layout, -1 = unseen
  std::vector<CacheProof> proofs;
  std::vector<LpMemo> lp_memos;
};

/// Canonical order of snapshot proofs: by combo cost, then by signature
/// fields. Used by export_delta() and by snapshot merges so the published
/// tier has one deterministic representation per entry set.
bool cache_proof_less(const CacheProof& a, const CacheProof& b);

/// Compacts `proofs` to a dominance antichain, keeping the first of any
/// mutually-dominating pair (same keep-first rule as the frozen tier).
void compact_cache_proofs(std::vector<CacheProof>* proofs);

/// Thread-safe store of complete infeasibility proofs, sharded over
/// reader/writer mutexes (queries take shared locks only).
class SearchCache {
 public:
  SearchCache() = default;

  /// Marks the start of a public engine operation: seals every entry
  /// recorded so far (making it visible to dominance skips) and drops the
  /// whole store when `spec` is structurally incompatible with the spec
  /// family the entries were proved under (different graph, rules, class
  /// latencies, recovery mode, instance caps, vendor count, or a changed
  /// area for an offer both catalogs carry — a *thinned* catalog with
  /// unchanged areas keeps every entry, which is what makes reoptimize()
  /// fast). Not thread-safe: public engine operations are serialized.
  /// Returns the epoch the new operation runs under.
  std::uint64_t begin_op(const ProblemSpec& spec);

  /// Records a complete infeasibility proof for `sig`, tagged with the
  /// producing operation's epoch, sub-search context, and the license cost
  /// of the refuted tuple. Never call for node-limit / timeout / cancelled
  /// outcomes — those prove nothing.
  void record(const PaletteSignature& sig, std::uint64_t epoch,
              std::uint64_t ctx, long long combo_cost);

  /// True when an entry sealed before `epoch` dominates `sig`. This is the
  /// only query the dispatch loop may use: the frozen tier is identical
  /// for every thread count.
  bool dominated_frozen(const PaletteSignature& sig,
                        std::uint64_t epoch) const;

  /// Post-search query for reclassifying truncated (inconclusive)
  /// evaluations: frozen entries plus the operation's own context. Call
  /// only after finalize_context() has pruned the context to its
  /// deterministic prefix.
  bool dominated(const PaletteSignature& sig, std::uint64_t epoch,
                 std::uint64_t ctx) const;

  /// Drops this context's entries with combo cost >= keep_below. Every
  /// surviving entry came from a queue position that is dispatched in
  /// every run (the cheapest-first queue cannot stop while sets cheaper
  /// than the final incumbent remain), so the sealed tier stays
  /// deterministic across thread counts.
  void finalize_context(std::uint64_t epoch, std::uint64_t ctx,
                        long long keep_below);

  /// Cached LP cost lower bounds (core/ilp_formulation.hpp:
  /// license_lp_lower_bound), keyed by the exact signature of the market
  /// they were priced for. Family scoping rides on begin_op(): an
  /// incompatible spec drops these together with the dominance entries, so
  /// a hit is always a bound proved for this spec family — which is what
  /// lets repeated minimize/reoptimize/frontier calls skip the simplex.
  /// Because the LP prices licenses — and license costs are deliberately
  /// *not* part of the family fingerprint (feasibility proofs don't depend
  /// on them) — each memo entry also carries a digest of the catalog's
  /// costs, computed from `spec` on both store and lookup.
  bool lp_bound(const ProblemSpec& spec, const PaletteSignature& sig,
                long long* bound) const;
  void store_lp_bound(const ProblemSpec& spec, const PaletteSignature& sig,
                      long long bound);

  /// Installs `base` as an always-sealed read-only tier underneath this
  /// store, dropping everything the store held before. Frozen queries scan
  /// the base tier in addition to the store's own frozen entries; the
  /// store's family fingerprint and offer-area layout are adopted from the
  /// base, so a later begin_op() with an incompatible spec drops the base
  /// together with everything else (clear() releases the reference).
  /// Pass nullptr to reset to a cold store. Not thread-safe: call between
  /// engine operations only.
  void adopt(std::shared_ptr<const CacheSnapshot> base);

  /// Exports the store's *own* surviving entries (frozen + live tiers and
  /// LP memos — the adopted base is excluded) in canonical order. Call
  /// after the operation's finalize_context() so the live tier has been
  /// pruned to its deterministically-dispatched prefix.
  CacheSnapshot export_delta() const;

  std::size_t size() const;
  void clear();

 private:
  struct Entry {
    PaletteSignature sig;
    long long combo_cost = 0;
    std::uint64_t epoch = 0;
    std::uint64_t ctx = 0;
  };
  /// Two-tier storage. `frozen` holds entries sealed by begin_op() (their
  /// epoch is strictly below the running operation's), kept as a compacted
  /// dominance antichain — this is the only tier the per-combo
  /// dominated_frozen() dispatch query scans, so it must stay small.
  /// `live` holds the current epoch's flood in append order: record() is a
  /// plain O(1) push_back, finalize_context() prunes a context to its
  /// deterministic prefix by cost, and the next begin_op() folds the
  /// survivors into `frozen` and re-compacts once per operation.
  struct Shard {
    mutable std::shared_mutex mutex;
    std::vector<Entry> frozen;
    std::vector<Entry> live;
  };
  static constexpr int kShards = 16;

  static bool entry_dominates(const Entry& entry, const PaletteSignature& q);
  /// Drops every entry dominated by another surviving entry (mutually
  /// dominating pairs keep the first). Only valid for the frozen tier,
  /// where all entries are visible to all future queries, so dropping a
  /// dominated entry never changes a query() verdict.
  static void compact_frozen(std::vector<Entry>& entries);
  int shard_of(const PaletteSignature& sig) const;
  bool query(const PaletteSignature& sig, std::uint64_t epoch,
             std::uint64_t ctx, bool frozen_only) const;

  std::array<Shard, kShards> shards_;
  /// LP bound memo: small (one entry per distinct market priced), so a
  /// single mutex suffices.
  struct LpEntry {
    PaletteSignature sig;
    std::uint64_t cost_digest = 0;
    long long bound = 0;
  };
  mutable std::shared_mutex lp_mutex_;
  std::vector<LpEntry> lp_bounds_;
  /// Adopted always-sealed tier (see adopt()); nullptr when running cold.
  /// Immutable and refcounted, so concurrent engines share one copy.
  std::shared_ptr<const CacheSnapshot> base_;
  std::uint64_t epoch_ = 0;
  /// Structural fingerprint of the spec family; 0 = no family adopted yet.
  std::uint64_t fingerprint_ = 0;
  /// Offer areas seen so far, (vendor * kNumResourceClasses + cls) -> area,
  /// -1 where no offer has been seen. Grown unioning across operations;
  /// any area mismatch on an offer both specs carry invalidates the store.
  std::vector<long long> offer_areas_;
};

/// Static feasibility screens: complete refutations from spec + palette
/// structure alone, no search. `enhanced == false` keeps only the legacy
/// phase-density area bound (the engine's historical precheck), which gives
/// A/B benchmarks a faithful baseline mode.
class StaticScreens {
 public:
  StaticScreens(const ProblemSpec& spec, bool enhanced);

  /// True = proof that no schedule/binding exists under this palette.
  bool refutes(const Palettes& palettes) const;

 private:
  const ProblemSpec& spec_;
  bool enhanced_ = false;
  std::array<int, dfg::kNumResourceClasses> op_counts_{};
  /// Lower bound on concurrent instances of each class (max over phases of
  /// occupancy pressure and phase-density ceilings).
  std::array<int, dfg::kNumResourceClasses> min_instances_{};
  /// Per deduplicated greedy conflict clique: member count per class.
  std::vector<std::array<int, dfg::kNumResourceClasses>> clique_counts_;
};

}  // namespace ht::core
