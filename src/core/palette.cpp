#include "core/palette.hpp"

#include <algorithm>
#include <string>

namespace ht::core {

std::array<std::vector<PaletteOption>, dfg::kNumResourceClasses>
enumerate_palettes(
    const ProblemSpec& spec,
    const std::array<int, dfg::kNumResourceClasses>& min_sizes) {
  std::array<std::vector<PaletteOption>, dfg::kNumResourceClasses> out;
  const auto op_counts = spec.graph.ops_per_class();
  for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    auto& options = out[static_cast<std::size_t>(cls)];
    if (op_counts[cls] == 0) {
      options.push_back(PaletteOption{0, {}});
      continue;
    }
    const auto rc = static_cast<dfg::ResourceClass>(cls);
    std::vector<vendor::VendorId> offering;
    for (vendor::VendorId v = 0; v < spec.catalog.num_vendors(); ++v) {
      if (spec.catalog.offers(v, rc)) offering.push_back(v);
    }
    const int count = static_cast<int>(offering.size());
    util::check_spec(count <= kMaxVendors,
                     "enumerate_palettes: catalog offers class " +
                         dfg::resource_class_name(rc) + " from " +
                         std::to_string(count) +
                         " vendors, above the kMaxVendors cap of " +
                         std::to_string(kMaxVendors) +
                         " (see core/problem.hpp)");
    const int min_size = std::max(1, min_sizes[cls]);
    for (unsigned mask = 1; mask < (1u << count); ++mask) {
      if (__builtin_popcount(mask) < min_size) continue;
      PaletteOption option;
      for (int bit = 0; bit < count; ++bit) {
        if (mask & (1u << bit)) {
          const vendor::VendorId v = offering[static_cast<std::size_t>(bit)];
          option.vendors.push_back(v);
          option.cost += spec.catalog.offer(v, rc).cost;
        }
      }
      options.push_back(std::move(option));
    }
    util::check_spec(!options.empty(),
                     "enumerate_palettes: no palette meets the lower bound "
                     "for class " + dfg::resource_class_name(rc));
    std::sort(options.begin(), options.end(),
              [](const PaletteOption& a, const PaletteOption& b) {
                if (a.cost != b.cost) return a.cost < b.cost;
                return a.vendors.size() < b.vendors.size();
              });
  }
  return out;
}

ComboQueue::ComboQueue(
    std::array<std::vector<PaletteOption>, dfg::kNumResourceClasses> options)
    : options_(std::move(options)) {
  for (const auto& list : options_) {
    util::check_spec(!list.empty(), "ComboQueue: empty palette list");
  }
  push({0, 0, 0});
}

long long ComboQueue::cost_of(
    const std::array<int, dfg::kNumResourceClasses>& index) const {
  long long cost = 0;
  for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    cost += options_[static_cast<std::size_t>(cls)]
                    [static_cast<std::size_t>(index[static_cast<std::size_t>(
                        cls)])]
                        .cost;
  }
  return cost;
}

void ComboQueue::push(const std::array<int, dfg::kNumResourceClasses>& index) {
  for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    if (index[static_cast<std::size_t>(cls)] >=
        static_cast<int>(options_[static_cast<std::size_t>(cls)].size())) {
      return;
    }
  }
  if (!visited_.insert(index).second) return;
  heap_.push_back(Node{cost_of(index), index});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
}

bool ComboQueue::peek(long long& cost) const {
  if (heap_.empty()) return false;
  cost = heap_.front().cost;  // min-heap via std::greater: front is cheapest
  return true;
}

bool ComboQueue::next(Palettes& palettes, long long& cost) {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
  const Node node = heap_.back();
  heap_.pop_back();
  cost = node.cost;
  for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    palettes[static_cast<std::size_t>(cls)] =
        options_[static_cast<std::size_t>(cls)]
                [static_cast<std::size_t>(
                     node.index[static_cast<std::size_t>(cls)])]
                    .vendors;
  }
  // Successors: advance one coordinate each.
  for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    std::array<int, dfg::kNumResourceClasses> successor = node.index;
    ++successor[static_cast<std::size_t>(cls)];
    push(successor);
  }
  return true;
}

}  // namespace ht::core
