#include "core/bounds.hpp"

#include <algorithm>
#include <climits>
#include <vector>

#include "core/rules.hpp"
#include "core/skyline.hpp"
#include "dfg/analysis.hpp"
#include "obs/trace.hpp"

namespace ht::core {
namespace {

/// Sentinel cost floor for a market that cannot supply the vendor floors at
/// all: above every finite combo cost, so the engine refutes every palette
/// and the drained queue proves kInfeasible.
constexpr long long kUnsuppliableMarket = LLONG_MAX / 4;

}  // namespace

LowerBounds::LowerBounds(const ProblemSpec& spec) : spec_(spec) {
  HT_TRACE_SPAN("bounds/build");
  const std::vector<int> latencies = spec.op_latencies();
  const auto op_counts = spec.graph.ops_per_class();

  // 1. Energetic interval floors, per phase. An op whose whole feasible
  // occupancy [ASAP start, ALAP start + latency - 1] fits inside [a, b]
  // executes entirely inside that window in every schedule, so the window
  // absorbs its full latency; detection counts NC + RC (weight 2) against
  // the shared phase-0 instance pool, recovery counts once.
  const auto add_phase = [&](int lambda, int weight) {
    const std::vector<int> asap = dfg::asap_levels(spec.graph, latencies);
    const std::vector<int> alap =
        dfg::alap_levels(spec.graph, lambda, latencies);
    for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
      // One demand item per op of the class: occupancy confined to
      // [ASAP start, ALAP start + latency - 1], weighted latency as demand.
      // The window sweep itself lives in core/skyline.cpp, shared with the
      // skyline property tests.
      std::vector<EnergeticItem> items;
      for (dfg::OpId op = 0; op < spec.graph.num_ops(); ++op) {
        if (static_cast<int>(dfg::resource_class_of(spec.graph.op(op).type)) !=
            cls) {
          continue;
        }
        const int lat = latencies[static_cast<std::size_t>(op)];
        items.push_back(
            EnergeticItem{asap[static_cast<std::size_t>(op)],
                          alap[static_cast<std::size_t>(op)] + lat - 1,
                          static_cast<long long>(lat) * weight});
      }
      int& floor = instance_floor_[static_cast<std::size_t>(cls)];
      floor = std::max(floor, energetic_interval_floor(items, lambda));
    }
  };
  add_phase(spec.lambda_detection, 2);
  if (spec.with_recovery) add_phase(spec.lambda_recovery, 1);

  // 2. Vendor-count floors: instances / per-offer cap, tightened by the
  // conflict-clique diversity floors the palette enumeration already uses.
  const std::array<int, dfg::kNumResourceClasses> clique_floors =
      min_vendors_per_class(spec);
  for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    if (op_counts[cls] == 0) continue;
    const auto rc = static_cast<dfg::ResourceClass>(cls);
    const int cap = spec.instance_cap(rc);
    const int from_instances =
        (instance_floor_[static_cast<std::size_t>(cls)] + cap - 1) / cap;
    vendor_floor_[static_cast<std::size_t>(cls)] =
        std::max({1, from_instances, clique_floors[cls]});
  }

  // 3. Cost floor: the vendor floors priced with the cheapest licenses of
  // each class. Any feasible solution is billed for at least this much.
  for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    const int need = vendor_floor_[static_cast<std::size_t>(cls)];
    if (need == 0) continue;
    const auto rc = static_cast<dfg::ResourceClass>(cls);
    std::vector<long long> costs;
    for (vendor::VendorId v = 0; v < spec.catalog.num_vendors(); ++v) {
      if (spec.catalog.offers(v, rc)) costs.push_back(spec.catalog.offer(v, rc).cost);
    }
    if (static_cast<int>(costs.size()) < need) {
      global_cost_lb_ = kUnsuppliableMarket;
      return;
    }
    std::sort(costs.begin(), costs.end());
    for (int i = 0; i < need; ++i) global_cost_lb_ += costs[static_cast<std::size_t>(i)];
  }
}

bool LowerBounds::refutes(const Palettes& palettes) const {
  const auto op_counts = spec_.graph.ops_per_class();
  long long area_floor = 0;
  for (int cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    if (op_counts[cls] == 0) continue;
    const auto rc = static_cast<dfg::ResourceClass>(cls);
    const auto& palette = palettes[static_cast<std::size_t>(cls)];
    const int floor = instance_floor_[static_cast<std::size_t>(cls)];
    const long long supply =
        static_cast<long long>(palette.size()) * spec_.instance_cap(rc);
    if (supply < floor) return true;
    // Diversity: fewer vendors on offer than distinct licenses any
    // feasible design must hold.
    if (static_cast<int>(palette.size()) <
        vendor_floor_[static_cast<std::size_t>(cls)]) {
      return true;
    }
    // Additive area floor: the mandatory instances cost at least the
    // palette's smallest per-instance area each.
    int min_area = INT_MAX;
    for (const vendor::VendorId v : palette) {
      min_area = std::min(min_area, spec_.catalog.offer(v, rc).area);
    }
    if (floor > 0 && min_area != INT_MAX) {
      area_floor += static_cast<long long>(floor) * min_area;
    }
  }
  return area_floor > spec_.area_limit;
}

}  // namespace ht::core
