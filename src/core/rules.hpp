// The design rules as a conflict-constraint engine.
//
// Every rule of Sections 2 and 3 ("bind to IP cores from different vendors")
// reduces to a binary *vendor-diversity conflict* between two operation
// copies. This module derives the complete conflict set from a ProblemSpec;
// the validator, the ILP formulation, the CSP solver and the heuristic all
// consume the same list, so a rule cannot be enforced inconsistently across
// engines.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/solution.hpp"

namespace ht::core {

/// One pairwise constraint: vendor(a) != vendor(b).
struct VendorConflict {
  CopyRef a;
  CopyRef b;
  /// Which rule produced it: "det-R1", "det-R2-chain", "det-R2-sibling",
  /// "rec-R1", "rec-R2".
  std::string rule;
};

/// Derives all conflicts implied by the spec's RuleConfig (deduplicated;
/// each unordered pair appears once, tagged with the first rule that
/// produced it).
std::vector<VendorConflict> vendor_conflicts(const ProblemSpec& spec);

/// Dense index of a copy for adjacency structures:
/// kind * num_ops + op, over 3 * num_ops slots.
int copy_index(CopyRef ref, int num_ops);

/// Adjacency lists over copy indices for the conflict set.
std::vector<std::vector<int>> conflict_adjacency(
    const ProblemSpec& spec, const std::vector<VendorConflict>& conflicts);

/// Lower bound on the number of distinct vendors each resource class needs,
/// from a greedy clique on the same-class conflict subgraph. This is the
/// quantity the paper's conclusion is about: with recovery enabled the
/// bound typically rises from 2 to 3-4 per class ("detection-only
/// underestimates the need for diversity").
std::array<int, dfg::kNumResourceClasses> min_vendors_per_class(
    const ProblemSpec& spec);

}  // namespace ht::core
