// Independent solution checker.
//
// Verifies every constraint of the paper's Section 4 against a Solution:
// completeness of the schedule, latency windows, dependence order inside
// each of the three schedules, all vendor-diversity rules, exclusive use of
// a core instance per cycle (eq. 16), the area bound (eq. 13), and catalog
// consistency. Both solvers and all tests funnel through this one checker,
// so a solver bug cannot be masked by a matching checker bug.
#pragma once

#include <string>
#include <vector>

#include "core/rules.hpp"
#include "core/solution.hpp"

namespace ht::core {

struct ValidationReport {
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  std::string to_string() const;
};

/// Checks `solution` against `spec`; returns all violations found.
ValidationReport validate_solution(const ProblemSpec& spec,
                                   const Solution& solution);

/// Convenience: throws util::InternalError listing the violations unless
/// the solution validates. Solvers call this before returning.
void require_valid(const ProblemSpec& spec, const Solution& solution);

}  // namespace ht::core
