#include "core/problem.hpp"

#include <algorithm>

namespace ht::core {

int ProblemSpec::instance_cap(dfg::ResourceClass rc) const {
  if (max_instances_per_offer > 0) return max_instances_per_offer;
  const auto counts = graph.ops_per_class();
  return std::max(1, counts[static_cast<int>(rc)]);
}

int ProblemSpec::op_latency(dfg::OpId op) const {
  return class_latency[static_cast<std::size_t>(
      dfg::resource_class_of(graph.op(op).type))];
}

std::vector<int> ProblemSpec::op_latencies() const {
  std::vector<int> latencies;
  latencies.reserve(static_cast<std::size_t>(graph.num_ops()));
  for (dfg::OpId op = 0; op < graph.num_ops(); ++op) {
    latencies.push_back(op_latency(op));
  }
  return latencies;
}

bool ProblemSpec::unit_latency() const {
  for (int latency : class_latency) {
    if (latency != 1) return false;
  }
  return true;
}

void ProblemSpec::validate() const {
  graph.validate();
  catalog.validate();
  util::check_spec(graph.num_ops() > 0, "ProblemSpec: empty DFG");
  util::check_spec(lambda_detection > 0,
                   "ProblemSpec: detection latency must be positive");
  if (with_recovery) {
    util::check_spec(lambda_recovery > 0,
                     "ProblemSpec: recovery latency must be positive");
  }
  util::check_spec(area_limit > 0, "ProblemSpec: area limit must be positive");
  util::check_spec(max_instances_per_offer >= 0,
                   "ProblemSpec: negative instance cap");
  for (int latency : class_latency) {
    util::check_spec(latency >= 1,
                     "ProblemSpec: class latencies must be >= 1");
  }

  const auto counts = graph.ops_per_class();
  for (int rc = 0; rc < dfg::kNumResourceClasses; ++rc) {
    if (counts[rc] == 0) continue;
    util::check_spec(
        catalog.num_vendors_offering(static_cast<dfg::ResourceClass>(rc)) > 0,
        "ProblemSpec: DFG uses " +
            dfg::resource_class_name(static_cast<dfg::ResourceClass>(rc)) +
            " ops but no vendor offers that class");
  }

  for (const auto& [a, b] : closely_related) {
    util::check_spec(a >= 0 && a < graph.num_ops() && b >= 0 &&
                         b < graph.num_ops() && a != b,
                     "ProblemSpec: close pair references invalid ops");
    util::check_spec(dfg::resource_class_of(graph.op(a).type) ==
                         dfg::resource_class_of(graph.op(b).type),
                     "ProblemSpec: close pairs must share a resource class "
                     "(the paper's Rule 2 for recovery assumes ot(i)=ot(j))");
  }
}

ProblemSpec make_detection_only_spec(dfg::Dfg graph, vendor::Catalog catalog,
                                     int lambda, long long area_limit) {
  ProblemSpec spec;
  spec.graph = std::move(graph);
  spec.catalog = std::move(catalog);
  spec.lambda_detection = lambda;
  spec.lambda_recovery = 0;
  spec.with_recovery = false;
  spec.area_limit = area_limit;
  spec.validate();
  return spec;
}

}  // namespace ht::core
