// Unified synthesis entry point: one request object, one engine, one
// response.
//
// Historically minimize_cost / minimize_cost_total_latency / area_frontier /
// reoptimize_without each re-implemented the same outer loop around the
// license-set search with their own copy of the budget semantics. The
// engine collapses them behind a single SynthesisRequest that carries the
// operation (RequestKind), the spec, the search budgets, the degree of
// parallelism, an optional progress callback, and an optional cancel token
// — and runs the license-set search on a work-stealing thread pool.
// SynthesisEngine::run() dispatches on the request kind and returns the one
// canonical SynthesisResponse; the kind-specific methods remain for callers
// that statically know their operation. The same request/response pair has
// a stable JSON serialization in src/service/wire.hpp shared by the thls
// CLI, the thlsd daemon, thls-client and the bench harness.
//
// Parallel search, deterministic commit. Workers pull license sets from the
// shared cheapest-first queue (each popped set gets a sequential
// palette index), evaluate them concurrently with the greedy/CSP stack, and
// commit results under one lock with the rule: the winner is the feasible
// solution of lowest (license cost, palette index). Because per-set
// evaluation is a pure function of (spec, palettes, index, seed) and the
// dispatched sets always form a prefix of the deterministic queue order
// that covers every set cheaper than the final winner, N-thread results are
// bit-identical to 1-thread — same status, cost, and binding. The only
// caveat is shared with the sequential engine: a binding wall-clock or
// cancellation stop truncates the search at a time-dependent point, so
// determinism is guaranteed whenever node/combo budgets (not the clock or
// the token) terminate the search. OptimizeStats are aggregated at commit
// time and may legitimately differ across thread counts (speculative
// evaluations); statuses and solutions never do.
#pragma once

#include <functional>
#include <mutex>
#include <set>
#include <vector>

#include "core/frontier.hpp"
#include "core/nogood.hpp"
#include "core/optimizer.hpp"
#include "core/search_cache.hpp"
#include "core/warm_state.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace ht::core {

/// Shared budget semantics for one synthesis call. Time and combo limits
/// span the whole search across all workers; node limits are per license
/// set.
struct SearchLimits {
  double time_limit_seconds = 120.0;
  /// Per-license-set CSP node budget (exact strategy).
  long csp_node_limit = 4'000'000;
  /// Heuristic strategy: restarts per license set and per-restart budget.
  int heuristic_restarts = 3;
  long heuristic_node_limit = 80'000;
  /// Stop after this many license sets regardless of proof state.
  long max_combos = 200'000;
  /// Deterministic intra-palette parallelism (exact strategy): split the
  /// CSP's root decision level into this many disjoint subtrees solved on
  /// the request's thread budget. 0 = auto (split large budgeted solves on
  /// big specs, where a single palette dwarfs the combo loop); 1 = never.
  /// Any value is bit-identical to sequential — the committed block is the
  /// lowest-index solved one.
  int intra_palette_split = 0;
};

struct Parallelism {
  /// Total compute lanes (calling thread included); 1 = sequential,
  /// 0 = one lane per hardware thread.
  int threads = 1;

  int resolved_threads() const {
    return threads <= 0 ? util::ThreadPool::hardware_concurrency() : threads;
  }
};

/// Prune-before-solve toggles (see core/search_cache.hpp). Both default on;
/// disabling them reproduces the pre-pruning engine exactly (A/B baselines,
/// determinism cross-checks). Neither changes statuses, costs or bindings —
/// skips carry complete infeasibility proofs.
struct PruningOptions {
  /// Skip license sets dominated by a sealed infeasibility proof from an
  /// earlier operation on the same engine (reoptimize, repeated minimize,
  /// successive sweeps), and reclassify truncated evaluations a completed
  /// proof covers.
  bool dominance_cache = true;
  /// Refute license sets by static occupancy/area/capacity/clique bounds
  /// before any CSP dispatch. When off, only the legacy phase-density area
  /// precheck runs.
  bool static_screens = true;
  /// Conflict-directed CSP search (core/csp_solver.hpp): backjumping +
  /// nogood learning, with learned nogoods reused across sibling palettes
  /// of later engine operations (core/nogood.hpp), Luby restarts on the
  /// heuristic path, and a full-market incumbent probe that backfills a
  /// budget-exhausted kUnknown with a feasible full-market binding. Off
  /// reproduces the chronological search node for node (A/B baselines).
  /// The whole package is upgrade-only: nogoods are sound deductions and
  /// the probe only answers where the search produced nothing, so a
  /// committed solution's cost and bindings never change and a verdict can
  /// only get *stronger* within equal budgets (a truncated evaluation may
  /// finish its proof or gain a feasible fallback).
  bool nogood_learning = true;
  /// Branch-and-bound lower bounds (core/bounds.hpp): a global license-cost
  /// floor refutes every cheaper license set in O(1) at pop time, and
  /// per-palette energetic instance/area floors refute sets no schedule can
  /// fit — all before any CSP dispatch. Bound prunes consume the
  /// max_combos window exactly like screen skips, so statuses and costs
  /// match the bounds-off engine row for row; the only visible differences
  /// are the wall clock and *upgrades* (the engine reports kOptimal the
  /// moment the cost floor meets the incumbent instead of enumerating on).
  bool cost_bounds = true;
  /// Opt-in LP tightening of the global cost floor: prices a reduced
  /// relaxation of the paper's ILP (license indicators + aggregated
  /// capacity/area rows, see core/ilp_formulation.hpp) with the dense
  /// simplex and takes the max with the combinatorial floor. Memoized in
  /// the SearchCache per (spec family, market signature, license costs), so
  /// repeated operations on a warm engine skip the solve. Off by default:
  /// the combinatorial floor is free and usually as tight on the paper's
  /// markets.
  bool lp_bound = false;
  /// Flat structure-of-arrays CSP inner loop (CspOptions::flat_state):
  /// counter-based nogood propagation and packed-key selection. Never
  /// changes results — either setting produces the same statuses, costs
  /// and node counts; the knob exists for A/B verification
  /// (EngineFlatStateTest, the bench flat_ab section) until the legacy
  /// path is retired.
  bool csp_flat_state = true;
};

/// Racing algorithm portfolio (see core/incumbent_pool.hpp and DESIGN.md
/// "Racing portfolio"). Enabled, each license-set minimization races up to
/// three members: the greedy constructor, the SLS binder
/// (core/sls_binder.hpp), and the exact member's full-market probe run
/// concurrently as deterministic, step-budgeted incumbent seeders
/// publishing validated bindings into a shared IncumbentPool; the exact
/// cheapest-first enumeration then starts with the pool's best as its
/// upper bound from time zero — pruning every set at or above it and
/// stopping instantly when the cost floor meets it.
/// The race is decided by *proofs*, not costs: seeder bindings only ever
/// bound the search, and the commit rule (cost, member rank, palette
/// index) hands the win to the exact member whenever it completes at equal
/// cost — so statuses and costs of proved results are bit-identical to a
/// portfolio-off run, at any thread count, and only wall clock (plus
/// upgrade-only strengthening of budget-truncated rows) changes.
struct PortfolioOptions {
  bool enabled = false;
  /// Run the greedy full-market seeder (member rank 1).
  bool greedy_member = true;
  /// Run the SLS decimation binder (member rank 2).
  bool sls_member = true;
  /// SLS attempt budget (SlsOptions::restarts / perturbations).
  int sls_restarts = 8;
  int sls_perturbations = 12;
};

/// Observability toggles for one synthesis call. Tracing is process-wide
/// (obs::start_tracing / trace.hpp) because spans fire from every layer;
/// metrics collection is per request because the per-stage timers live on
/// the dispatch hot path and SolveMetrics rides on each result.
struct ObservabilityOptions {
  /// Collect per-stage counters and duration histograms into
  /// OptimizeResult::metrics (see obs/metrics.hpp). Never changes
  /// statuses, costs, or bindings — only observes. Off: every
  /// instrumentation site is a thread-local load + branch.
  bool metrics = false;
  /// Request-correlation id minted by the service at admission (0 = not a
  /// service request). The engine establishes an obs::CorrelationScope
  /// with it on every search lane, so each trace span and log line of a
  /// daemon request is joinable back to its journal record. Never read by
  /// the search itself — results are bit-identical for any value.
  std::uint64_t request_id = 0;
};

/// Snapshot passed to the progress callback after each evaluated license
/// set — and, so callbacks never stall silently on prune-heavy searches,
/// after every kPruneProgressInterval consecutive skips. Callbacks are
/// serialized under the engine's commit lock — they may be called from any
/// worker thread but never concurrently; keep them fast.
struct SynthesisProgress {
  long combos_tried = 0;
  /// Skip counters, mirroring OptimizeStats: license sets refuted by the
  /// static screens, the dominance cache, and the branch-and-bound floors.
  long combos_skipped_screen = 0;
  long combos_skipped_cache = 0;
  long lb_prunes = 0;
  long csp_nodes = 0;
  /// CSP nodes including non-winning sibling sub-searches (see
  /// OptimizeStats::nodes_total).
  long nodes_total = 0;
  bool have_incumbent = false;
  long long incumbent_cost = 0;
  double seconds = 0.0;
  /// Live per-stage breakdown ("where the solver is"); zeros unless the
  /// request enabled ObservabilityOptions::metrics.
  obs::SolveMetrics metrics;
};

/// Consecutive skips between forced progress publications.
inline constexpr long kPruneProgressInterval = 2048;

using ProgressFn = std::function<void(const SynthesisProgress&)>;

/// The engine's operations, selected per request. One enum instead of the
/// historical four free-function families.
enum class RequestKind {
  kMinimize = 0,          ///< cost-minimal design for the fixed spec
  kMinimizeTotalLatency,  ///< Table-4: free split of `lambda_total`
  kAreaFrontier,          ///< cost vs. area bound over `sweep_values`
  kLatencyFrontier,       ///< cost vs. total latency over `sweep_values`
  kReoptimize,            ///< quarantine re-synthesis with `banned` removed
};
inline constexpr int kNumRequestKinds = 5;

/// Stable wire name ("minimize", "minimize_total_latency", ...).
const char* request_kind_name(RequestKind kind);

/// Inverse of request_kind_name; returns false on an unknown name.
bool parse_request_kind(const std::string& name, RequestKind* out);

/// Everything one synthesis call needs. The spec is owned by value so a
/// request outlives the data it was built from. Which of the kind-specific
/// fields (lambda_total, sweep_values, banned) is read depends on `kind`;
/// the others are ignored.
struct SynthesisRequest {
  RequestKind kind = RequestKind::kMinimize;
  ProblemSpec spec;
  Strategy strategy = Strategy::kExact;
  SearchLimits limits;
  Parallelism parallelism;
  PruningOptions pruning;
  PortfolioOptions portfolio;
  ObservabilityOptions observability;
  std::uint64_t seed = 1;
  /// kMinimizeTotalLatency: bound on the combined detection + recovery
  /// schedule; the split is chosen by the engine.
  int lambda_total = 0;
  /// kAreaFrontier: area limits; kLatencyFrontier: total latencies.
  std::vector<long long> sweep_values;
  /// kReoptimize: licenses removed from the market before re-synthesis.
  std::set<LicenseKey> banned;
  ProgressFn progress;                      ///< optional
  const util::CancelToken* cancel = nullptr;  ///< optional; not owned
};

/// Constraint axis swept by SynthesisEngine::sweep_frontier.
struct FrontierSweep {
  enum class Axis {
    kArea,          ///< values are area limits
    kTotalLatency,  ///< values are total (detection + recovery) latencies
  };
  Axis axis = Axis::kArea;
  std::vector<long long> values;
};

/// The one response shape every operation produces. `result` always holds
/// the primary verdict: the optimum for kMinimize/kReoptimize, the best
/// split's result for kMinimizeTotalLatency (with the winning split in the
/// lambda fields), and the *first* point's result for the frontier kinds
/// (the full curve is in `frontier`).
struct SynthesisResponse {
  RequestKind kind = RequestKind::kMinimize;
  OptimizeResult result;
  /// kMinimizeTotalLatency: the committed split.
  int lambda_detection = 0;
  int lambda_recovery = 0;
  /// Frontier kinds: one labeled point per sweep value, in request order.
  std::vector<FrontierPoint> frontier;
};

/// Façade over the parallel license-set search. All operations share the
/// request's budgets, thread count, progress callback, and cancel token.
/// The engine is reusable but not reentrant: run one operation at a time
/// per engine. Reuse is where the warm state lives — the dominance cache,
/// the nogood store, and the LP-bound memos persist across run() calls
/// (self-invalidating when a structurally incompatible spec arrives), which
/// is what the thlsd daemon exploits by routing same-market requests
/// through one engine.
class SynthesisEngine {
 public:
  /// An engine with no request yet: feed it via run(request). This is the
  /// long-lived service shape.
  SynthesisEngine() = default;
  explicit SynthesisEngine(SynthesisRequest request);

  const SynthesisRequest& request() const { return request_; }

  /// Replaces the engine's request and dispatches on its kind. Warm state
  /// (cache/nogoods/LP memos) carries over from previous runs and may only
  /// change *speed* — never statuses, costs, or bindings — within equal
  /// budgets (see DESIGN.md §5 for the argument and its budget-truncation
  /// caveat).
  SynthesisResponse run(const SynthesisRequest& request);

  /// Dispatches the engine's current request on its kind.
  SynthesisResponse run();

  /// Minimizes license cost for the request's fully specified spec.
  OptimizeResult minimize();

  /// Table-4 semantics: `lambda_total` bounds the combined schedule and
  /// the split between detection and recovery is free; splits are searched
  /// in parallel. Requires spec.with_recovery.
  SplitResult minimize_total_latency(int lambda_total);

  /// Optimizes every point of a constraint sweep (points in parallel).
  std::vector<FrontierPoint> sweep_frontier(const FrontierSweep& sweep);

  /// Re-synthesizes with the banned licenses removed from the market
  /// (post-detection quarantine). kInfeasible when a needed class has no
  /// offers left.
  OptimizeResult reoptimize(const std::set<LicenseKey>& banned);

  /// Complete infeasibility proofs accumulated across this engine's
  /// operations (see core/search_cache.hpp). Exposed for tests and stats;
  /// cleared automatically when an operation runs a structurally
  /// incompatible spec.
  const SearchCache& cache() const { return cache_; }

  /// Palette-guarded nogoods accumulated across this engine's operations
  /// (see core/nogood.hpp); same lifetime discipline as cache().
  const NogoodStore& nogoods() const { return nogoods_; }

  /// Installs a shared read-only warm-state snapshot (core/warm_state.hpp):
  /// the engine drops everything it accumulated itself and serves sealed
  /// queries from `snap` plus whatever the next run records privately.
  /// nullptr resets the engine to cold. Not thread-safe — call between
  /// operations; the snapshot itself may be adopted by any number of
  /// engines concurrently.
  void adopt_warm(const WarmSnapshotPtr& snap);

  /// The warm state this engine accumulated on top of its adopted base
  /// (the base itself is excluded). Call after run() returns — the
  /// operation's finalize has already pruned live tiers to their
  /// deterministically-dispatched prefix.
  WarmDelta export_warm_delta() const;

 private:
  /// minimize() against an explicit spec (splits/frontier points override
  /// fields of the request's spec), with an explicit thread budget. `ctx`
  /// identifies this sub-search among the operation's concurrent siblings
  /// for cache-entry scoping.
  OptimizeResult minimize_spec(const ProblemSpec& spec, int threads,
                               std::uint64_t ctx);
  SplitResult split_minimize(const ProblemSpec& base, int lambda_total,
                             int threads, std::uint64_t ctx_base);

  SynthesisRequest request_;
  SearchCache cache_;
  NogoodStore nogoods_;
  /// Epoch of the current public operation (set by SearchCache::begin_op
  /// before sub-searches fan out; read-only while they run).
  std::uint64_t op_epoch_ = 0;
  /// NogoodStore epoch of the current operation (its own counter).
  std::uint64_t nogood_epoch_ = 0;
  /// Serializes the user progress callback across concurrent sub-searches
  /// (split sweeps and frontier points share one engine).
  std::mutex progress_mutex_;
};

/// Builds a kMinimize request from a spec plus the flat OptimizerOptions
/// knob struct (the CLI/bench-facing option surface). Adjust `kind` and the
/// kind-specific fields afterwards for the other operations.
SynthesisRequest make_request(const ProblemSpec& spec,
                              const OptimizerOptions& options = {});

/// One-shot convenience: constructs a fresh (cold) engine and runs the
/// request. The canonical entry point for callers without an engine to
/// keep warm.
SynthesisResponse synthesize(const SynthesisRequest& request);

}  // namespace ht::core
