// Combinatorial lower bounds for the license-set branch-and-bound.
//
// The license-set search enumerates palettes cheapest-first and asks a CSP
// whether each admits a design. Everything here is a *relaxation* of that
// CSP: each bound reasons only about aggregate instance counts, vendor
// counts and license prices, so a bound that refutes a palette (or prices
// the whole market above an incumbent) is a complete proof — the CSP solve
// can be skipped without changing any status or cost. The engine consumes
// the dispatch window for every bound-pruned set exactly like a screen
// skip, so the (cost, palette index) commit discipline is untouched: a
// bound may only skip palettes, never reorder winners.
//
// Bound hierarchy (weakest to strongest, all computed once per spec):
//   1. Energetic interval floors: within one phase, an op whose whole
//      feasible occupancy [ASAP, ALAP + latency - 1] lies inside a window
//      [a, b] contributes its full latency to that window no matter how it
//      is scheduled. Maximizing ceil(demand / width) over all windows
//      lower-bounds the concurrent instances of each class — strictly
//      stronger than the single-cycle mandatory-profile peak used by the
//      static screens (a window can be saturated even when no single cycle
//      is).
//   2. Vendor-count floors: instance floors divided by the per-offer
//      instance cap, combined with the conflict-clique diversity floors
//      (rules::min_vendors_per_class) — the minimum number of *distinct*
//      licenses per class in any feasible design.
//   3. Cost floor: pricing the vendor-count floors with the cheapest
//      catalog licenses of each class gives a lower bound on the license
//      cost of ANY feasible solution (a solution is billed for the
//      licenses it uses, and it must use at least the floor).
//
// An opt-in LP bound (core/ilp_formulation.hpp: license_lp_lower_bound)
// can tighten the cost floor further; the engine takes the max.
#pragma once

#include <array>

#include "core/csp_solver.hpp"  // Palettes
#include "core/problem.hpp"

namespace ht::core {

class LowerBounds {
 public:
  /// Precomputes every floor. Requires both phase latency bounds to be at
  /// or above the critical path (the engine's ALAP precheck guarantees it;
  /// dfg::alap_levels throws util::InfeasibleError otherwise).
  explicit LowerBounds(const ProblemSpec& spec);

  /// Minimum concurrent instances of each class in any feasible schedule
  /// (max of both phases' energetic interval floors).
  const std::array<int, dfg::kNumResourceClasses>& instance_floors() const {
    return instance_floor_;
  }

  /// Minimum distinct licenses of each class in any feasible design.
  const std::array<int, dfg::kNumResourceClasses>& vendor_floors() const {
    return vendor_floor_;
  }

  /// Lower bound on the license cost of any feasible solution: the
  /// vendor-count floors priced with the cheapest licenses per class.
  long long global_cost_lb() const { return global_cost_lb_; }

  /// Complete refutation test for one palette: true when the palette
  /// cannot supply the instance floors (|palette_c| * cap < floor_c) or
  /// when the floors priced at the palette's *smallest* per-class areas
  /// already overrun the area limit. A true return is a proof of
  /// infeasibility for every schedule under this palette.
  bool refutes(const Palettes& palettes) const;

 private:
  const ProblemSpec& spec_;
  std::array<int, dfg::kNumResourceClasses> instance_floor_{};
  std::array<int, dfg::kNumResourceClasses> vendor_floor_{};
  long long global_cost_lb_ = 0;
};

}  // namespace ht::core
