// Design-space frontier sweeps.
//
// The paper reports single (lambda, A) points per benchmark; designers
// usually want the whole tradeoff curve — how much does tightening the
// area budget or the schedule length cost in license fees, and where does
// the constraint become infeasible? These helpers run the optimizer across
// a constraint sweep and return the labeled points (bench_frontier prints
// them as series).
#pragma once

#include <vector>

#include "core/optimizer.hpp"

namespace ht::core {

struct FrontierPoint {
  long long constraint = 0;  ///< the swept value (area or total latency)
  OptimizeResult result;
};

/// Cost as a function of the area bound; everything else fixed by `spec`.
[[deprecated(
    "build a SynthesisRequest (RequestKind::kAreaFrontier, sweep_values) "
    "and call core::synthesize() / SynthesisEngine::run()")]]
std::vector<FrontierPoint> area_frontier(const ProblemSpec& spec,
                                         const std::vector<long long>& areas,
                                         const OptimizerOptions& options = {});

/// Cost as a function of the *total* schedule length (detection +
/// recovery, split chosen by the optimizer). `base.with_recovery` must be
/// true. Values below twice the critical path are reported infeasible.
[[deprecated(
    "build a SynthesisRequest (RequestKind::kLatencyFrontier, sweep_values) "
    "and call core::synthesize() / SynthesisEngine::run()")]]
std::vector<FrontierPoint> latency_frontier(
    const ProblemSpec& base, const std::vector<int>& lambda_totals,
    const OptimizerOptions& options = {});

}  // namespace ht::core
