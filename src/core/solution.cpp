#include "core/solution.hpp"

#include <algorithm>
#include <map>

namespace ht::core {

std::string copy_kind_name(CopyKind kind) {
  switch (kind) {
    case CopyKind::kNormal:
      return "NC";
    case CopyKind::kRedundant:
      return "RC";
    case CopyKind::kRecovery:
      return "REC";
  }
  return "?";
}

Solution::Solution(int num_ops, bool with_recovery)
    : num_ops_(num_ops), with_recovery_(with_recovery) {
  util::check_spec(num_ops > 0, "Solution: num_ops must be positive");
  bindings_.resize(static_cast<std::size_t>(num_ops) * kNumCopyKinds);
}

Binding& Solution::at(CopyRef ref) {
  util::check_spec(ref.op >= 0 && ref.op < num_ops_,
                   "Solution::at: op out of range");
  util::check_spec(with_recovery_ || ref.kind != CopyKind::kRecovery,
                   "Solution::at: recovery copy in detection-only solution");
  return bindings_[static_cast<std::size_t>(ref.kind) *
                       static_cast<std::size_t>(num_ops_) +
                   static_cast<std::size_t>(ref.op)];
}

const Binding& Solution::at(CopyRef ref) const {
  return const_cast<Solution*>(this)->at(ref);
}

std::vector<CopyKind> Solution::active_kinds() const {
  if (with_recovery_) {
    return {CopyKind::kNormal, CopyKind::kRedundant, CopyKind::kRecovery};
  }
  return {CopyKind::kNormal, CopyKind::kRedundant};
}

std::vector<CopyRef> Solution::all_copies() const {
  std::vector<CopyRef> out;
  for (CopyKind kind : active_kinds()) {
    for (dfg::OpId op = 0; op < num_ops_; ++op) {
      out.push_back(CopyRef{kind, op});
    }
  }
  return out;
}

std::set<CoreKey> Solution::cores_used(const ProblemSpec& spec) const {
  std::set<CoreKey> cores;
  for (CopyRef ref : all_copies()) {
    const Binding& binding = at(ref);
    if (!binding.is_set()) continue;
    cores.insert(CoreKey{binding.vendor,
                         dfg::resource_class_of(spec.graph.op(ref.op).type),
                         binding.instance});
  }
  return cores;
}

std::set<LicenseKey> Solution::licenses_used(const ProblemSpec& spec) const {
  std::set<LicenseKey> licenses;
  for (const CoreKey& core : cores_used(spec)) {
    licenses.insert(LicenseKey{core.vendor, core.rc});
  }
  return licenses;
}

std::set<vendor::VendorId> Solution::vendors_used(
    const ProblemSpec& spec) const {
  std::set<vendor::VendorId> vendors;
  for (const LicenseKey& license : licenses_used(spec)) {
    vendors.insert(license.vendor);
  }
  return vendors;
}

long long Solution::license_cost(const ProblemSpec& spec) const {
  long long total = 0;
  for (const LicenseKey& license : licenses_used(spec)) {
    total += spec.catalog.offer(license.vendor, license.rc).cost;
  }
  return total;
}

long long Solution::total_area(const ProblemSpec& spec) const {
  long long total = 0;
  for (const CoreKey& core : cores_used(spec)) {
    total += spec.catalog.offer(core.vendor, core.rc).area;
  }
  return total;
}

int Solution::detection_makespan() const {
  int makespan = 0;
  for (dfg::OpId op = 0; op < num_ops_; ++op) {
    for (CopyKind kind : {CopyKind::kNormal, CopyKind::kRedundant}) {
      makespan = std::max(makespan, at(kind, op).cycle);
    }
  }
  return makespan;
}

int Solution::recovery_makespan() const {
  if (!with_recovery_) return 0;
  int makespan = 0;
  for (dfg::OpId op = 0; op < num_ops_; ++op) {
    makespan = std::max(makespan, at(CopyKind::kRecovery, op).cycle);
  }
  return makespan;
}

std::string Solution::to_string(const ProblemSpec& spec) const {
  std::string out;
  auto render_phase = [&](const std::string& title,
                          const std::vector<CopyKind>& kinds, int length) {
    out += title + "\n";
    std::map<int, std::vector<std::string>> by_cycle;
    for (CopyKind kind : kinds) {
      for (dfg::OpId op = 0; op < num_ops_; ++op) {
        const Binding& binding = at(kind, op);
        if (!binding.is_set()) continue;
        by_cycle[binding.cycle].push_back(
            copy_kind_name(kind) + ":" + spec.graph.op(op).name + "@Ven" +
            std::to_string(binding.vendor + 1) + "." +
            std::to_string(binding.instance));
      }
    }
    for (int cycle = 1; cycle <= length; ++cycle) {
      out += "  cycle " + std::to_string(cycle) + ": ";
      auto it = by_cycle.find(cycle);
      if (it != by_cycle.end()) {
        std::sort(it->second.begin(), it->second.end());
        for (std::size_t i = 0; i < it->second.size(); ++i) {
          if (i > 0) out += "  ";
          out += it->second[i];
        }
      }
      out += "\n";
    }
  };
  render_phase("detection phase (NC + RC):",
               {CopyKind::kNormal, CopyKind::kRedundant},
               std::max(detection_makespan(), spec.lambda_detection));
  if (with_recovery_) {
    render_phase("recovery phase:", {CopyKind::kRecovery},
                 std::max(recovery_makespan(), spec.lambda_recovery));
  }
  return out;
}

}  // namespace ht::core
