// The paper's ILP formulation, equations (3)-(17), built verbatim.
//
// One 0-1 variable per (copy, cycle, vendor, instance) — the paper's
// D/D'/R_{i,l,k,m} — plus the usage indicators epsilon(k,t,m) and
// delta(k,t). Detection copies range over the detection phase's cycles and
// recovery copies over the recovery phase's; with the phase boundary fixed
// this way, the paper's ordering constraints (14)-(15) hold structurally
// (the optimizer explores boundary placements by re-solving per split, see
// minimize_cost_total_latency).
//
// This path exists for fidelity and cross-checking: the CSP optimizer is
// the practical engine, and tests assert both report the same minimum cost
// on small instances. Like the paper's Lingo runs, the branch & bound may
// time out on the big benchmarks ('*' results).
#pragma once

#include "core/optimizer.hpp"
#include "ilp/branch_and_bound.hpp"
#include "ilp/model.hpp"

namespace ht::core {

/// The lowered model together with the variable maps needed to decode a
/// solver assignment back into a Solution.
class IlpFormulation {
 public:
  explicit IlpFormulation(const ProblemSpec& spec);

  const ilp::Model& model() const { return model_; }

  /// Variable index of H_{i,l,k,m} for the given copy kind; -1 when the
  /// combination is not represented (vendor lacks the class, cycle outside
  /// the phase window, ...).
  int schedule_var(CopyKind kind, dfg::OpId op, int cycle,
                   vendor::VendorId vendor, int instance) const;

  int epsilon_var(vendor::VendorId vendor, dfg::ResourceClass rc,
                  int instance) const;
  int delta_var(vendor::VendorId vendor, dfg::ResourceClass rc) const;

  /// Rebuilds a Solution from a feasible assignment of `model()`.
  Solution decode(const std::vector<double>& values) const;

 private:
  void create_variables();
  void add_constraints();

  const ProblemSpec& spec_;
  ilp::Model model_;

  int num_ops_ = 0;
  std::vector<CopyKind> kinds_;
  // schedule_index_[kind][op][cycle-1][vendor][instance] flattened via maps.
  std::vector<int> schedule_index_;
  std::vector<int> epsilon_index_;
  std::vector<int> delta_index_;
  int lambda_of(CopyKind kind) const;
  int cap_of(dfg::ResourceClass rc) const;
  std::size_t schedule_slot(CopyKind kind, dfg::OpId op, int cycle,
                            vendor::VendorId vendor, int instance) const;
  int max_lambda_ = 0;
  int max_cap_ = 0;
};

/// Solves the full formulation with branch & bound and returns the same
/// result type as the CSP-based optimizer.
OptimizeResult minimize_cost_ilp(const ProblemSpec& spec,
                                 const ilp::BnbOptions& options = {});

/// Warm-started variant: uses `warm` (a valid solution for `spec`) as the
/// initial upper bound so the branch & bound only has to find something
/// strictly better or prove nothing better exists. Returns `warm` marked
/// kOptimal when the search exhausts without an improvement, the improved
/// design when one is found, or `warm` marked kFeasible when the budget
/// runs out first.
OptimizeResult minimize_cost_ilp_warm(const ProblemSpec& spec,
                                      const Solution& warm,
                                      const ilp::BnbOptions& options = {});

/// Prices a *reduced* LP relaxation of the formulation for the license-set
/// branch-and-bound: only the license indicators delta(k,t) plus one
/// aggregate instance-count column per (vendor, class) survive; the
/// schedule variables are replaced by the aggregated capacity rows implied
/// by `instance_floors` (minimum concurrent instances per class, see
/// core/bounds.hpp) and `vendor_floors` (minimum distinct licenses per
/// class), with per-offer capacity links n <= cap * delta and the area
/// budget kept exact. Every feasible design of `spec` induces a feasible
/// point of this LP with equal license cost, so ceil(LP objective) is a
/// valid lower bound on the optimum. Returns -1 when the simplex does not
/// reach kOptimal (iteration limit / unbounded) and LLONG_MAX/4 when the
/// relaxation itself is infeasible (the spec has no feasible design).
long long license_lp_lower_bound(
    const ProblemSpec& spec,
    const std::array<int, dfg::kNumResourceClasses>& instance_floors,
    const std::array<int, dfg::kNumResourceClasses>& vendor_floors);

}  // namespace ht::core
