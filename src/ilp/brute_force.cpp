#include "ilp/brute_force.hpp"

#include <cmath>

#include "util/timer.hpp"

namespace ht::ilp {

SolveResult solve_brute_force(const Model& model,
                              const BruteForceOptions& options) {
  util::Timer timer;
  // Verify domain sizes and the total search-space bound.
  long long total = 1;
  std::vector<int> domain_sizes;
  for (const Variable& v : model.variables()) {
    util::check_spec(v.kind != VarKind::kContinuous,
                     "solve_brute_force: continuous variables unsupported");
    const long long size =
        static_cast<long long>(std::floor(v.upper)) -
        static_cast<long long>(std::ceil(v.lower)) + 1;
    util::check_spec(size >= 1, "solve_brute_force: empty variable domain");
    domain_sizes.push_back(static_cast<int>(size));
    if (total > options.max_assignments / size) {
      throw util::SpecError(
          "solve_brute_force: search space exceeds max_assignments");
    }
    total *= size;
  }

  SolveResult result;
  std::vector<double> assignment(model.variables().size(), 0.0);
  std::vector<int> counters(model.variables().size(), 0);
  bool found = false;
  for (long long step = 0; step < total; ++step) {
    for (std::size_t v = 0; v < assignment.size(); ++v) {
      assignment[v] = std::ceil(model.variable(static_cast<int>(v)).lower) +
                      counters[v];
    }
    ++result.stats.nodes;
    if (model.is_feasible(assignment)) {
      const double objective = model.objective_value(assignment);
      if (!found || objective < result.objective) {
        found = true;
        result.objective = objective;
        result.values = assignment;
      }
    }
    // Odometer increment.
    for (std::size_t v = 0; v < counters.size(); ++v) {
      if (++counters[v] < domain_sizes[v]) break;
      counters[v] = 0;
    }
  }
  result.status = found ? SolveStatus::kOptimal : SolveStatus::kInfeasible;
  result.stats.seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace ht::ilp
