#include "ilp/branch_and_bound.hpp"

#include <cmath>
#include <vector>

#include "util/logging.hpp"
#include "util/timer.hpp"

namespace ht::ilp {
namespace {

bool objective_is_integral(const Model& model) {
  for (const Variable& v : model.variables()) {
    if (v.objective != std::round(v.objective)) return false;
    if (v.kind == VarKind::kContinuous && v.objective != 0.0) return false;
  }
  return true;
}

struct Frame {
  int var = -1;        // branched variable (-1 for root)
  double lower = 0.0;  // bounds this frame imposes
  double upper = 0.0;
  double saved_lower = 0.0;  // bounds to restore on unwind
  double saved_upper = 0.0;
  int children_tried = 0;    // 0 = none, 1 = first child done, 2 = both
  double branch_value = 0.0; // fractional LP value we branched on
};

}  // namespace

SolveResult solve_branch_and_bound(const Model& model,
                                   const BnbOptions& options) {
  util::Timer timer;
  SolveResult result;
  lp::LpProblem relaxation = model.relaxation();
  const bool integral_objective = objective_is_integral(model);

  bool have_incumbent = false;
  double incumbent_value = 0.0;
  std::vector<double> incumbent;

  bool exhausted = true;  // search completed without hitting a limit

  // Explicit DFS stack. Each entry owns one bound change on `relaxation`.
  std::vector<Frame> stack;

  // Process one node: solve LP under current bounds and either prune,
  // record an incumbent, or push a child frame. Returns false when the
  // subtree is finished (caller should unwind).
  auto explore = [&]() -> bool {
    ++result.stats.nodes;
    lp::LpResult lp_result = lp::solve(relaxation, options.lp_options);
    result.stats.lp_iterations += lp_result.iterations;
    if (lp_result.status == lp::LpStatus::kInfeasible) return false;
    if (lp_result.status == lp::LpStatus::kIterationLimit) {
      exhausted = false;  // cannot trust the subtree; treat as unexplored
      return false;
    }
    util::check_internal(lp_result.status == lp::LpStatus::kOptimal,
                         "bnb: bounded binary model reported unbounded");

    double bound = lp_result.objective;
    if (integral_objective) {
      bound = std::ceil(bound - 1e-6);
    }
    const double cutoff = have_incumbent
                              ? incumbent_value
                              : options.initial_upper_bound;
    if (bound >= cutoff - 1e-9) return false;

    // Most fractional integer variable. Variables with a non-zero
    // objective coefficient (the delta license indicators in the paper's
    // formulation) take priority: fixing them collapses the cost bound far
    // faster than fixing schedule variables.
    int branch_var = -1;
    double best_frac_distance = options.integrality_tol;
    bool best_has_cost = false;
    for (int v = 0; v < model.num_variables(); ++v) {
      const Variable& var = model.variable(v);
      if (var.kind == VarKind::kContinuous) continue;
      const double value = lp_result.values[static_cast<std::size_t>(v)];
      const double distance = std::abs(value - std::round(value));
      if (distance <= options.integrality_tol) continue;
      const bool has_cost = var.objective != 0.0;
      const bool better =
          branch_var < 0 || (has_cost && !best_has_cost) ||
          (has_cost == best_has_cost &&
           std::abs(distance - 0.5) < std::abs(best_frac_distance - 0.5));
      if (better) {
        branch_var = v;
        best_frac_distance = distance;
        best_has_cost = has_cost;
      }
    }

    if (branch_var < 0) {
      // Integral LP optimum: new incumbent.
      if (!have_incumbent || lp_result.objective < incumbent_value - 1e-9) {
        have_incumbent = true;
        incumbent_value = lp_result.objective;
        incumbent = lp_result.values;
        for (int v = 0; v < model.num_variables(); ++v) {
          if (model.variable(v).kind != VarKind::kContinuous) {
            incumbent[static_cast<std::size_t>(v)] =
                std::round(lp_result.values[static_cast<std::size_t>(v)]);
          } else {
            incumbent[static_cast<std::size_t>(v)] =
                lp_result.values[static_cast<std::size_t>(v)];
          }
        }
      }
      return false;
    }

    // Push a child frame for branch_var.
    Frame frame;
    frame.var = branch_var;
    frame.saved_lower = relaxation.lower(branch_var);
    frame.saved_upper = relaxation.upper(branch_var);
    frame.branch_value = lp_result.values[static_cast<std::size_t>(branch_var)];
    stack.push_back(frame);
    return true;
  };

  // Applies the next untried child of the top frame; false if both tried.
  auto descend_child = [&]() -> bool {
    Frame& frame = stack.back();
    const double floor_value = std::floor(frame.branch_value);
    const double frac = frame.branch_value - floor_value;
    // Nearest-integer child first.
    const bool down_first = frac < 0.5;
    int child = frame.children_tried;
    if (child >= 2) return false;
    ++frame.children_tried;
    const bool take_down = (child == 0) == down_first;
    if (take_down) {
      relaxation.set_bounds(frame.var, frame.saved_lower, floor_value);
    } else {
      relaxation.set_bounds(frame.var, floor_value + 1.0, frame.saved_upper);
    }
    return true;
  };

  // Root.
  bool descending = explore();
  while (!stack.empty()) {
    if (timer.elapsed_seconds() > options.time_limit_seconds ||
        result.stats.nodes > options.max_nodes ||
        (options.first_feasible_only && have_incumbent)) {
      exhausted = false;
      break;
    }
    if (descending) {
      if (descend_child()) {
        descending = explore();
      } else {
        // Both children done: restore bounds and unwind.
        Frame& frame = stack.back();
        relaxation.set_bounds(frame.var, frame.saved_lower, frame.saved_upper);
        stack.pop_back();
        descending = false;
      }
    } else {
      // Came back up: try the sibling of the top frame.
      Frame& frame = stack.back();
      // Restore before applying the other child's bounds.
      relaxation.set_bounds(frame.var, frame.saved_lower, frame.saved_upper);
      if (descend_child()) {
        descending = explore();
      } else {
        stack.pop_back();
        descending = false;
      }
    }
  }

  result.stats.seconds = timer.elapsed_seconds();
  if (have_incumbent) {
    result.objective = incumbent_value;
    result.values = incumbent;
    result.status = exhausted && stack.empty() ? SolveStatus::kOptimal
                                               : SolveStatus::kFeasible;
    if (options.first_feasible_only) result.status = SolveStatus::kFeasible;
  } else {
    result.status = exhausted && stack.empty() ? SolveStatus::kInfeasible
                                               : SolveStatus::kUnknown;
  }
  return result;
}

}  // namespace ht::ilp
