// Exhaustive reference solver for tiny models.
//
// Exists to certify the branch & bound: tests solve randomly generated small
// models with both and require identical optima. Refuses models whose
// search space exceeds `max_assignments`.
#pragma once

#include "ilp/model.hpp"

namespace ht::ilp {

struct BruteForceOptions {
  /// Hard cap on the number of integer assignments enumerated.
  long long max_assignments = 1 << 24;
};

/// Enumerates every integral assignment (continuous variables are not
/// supported) and returns the best feasible one.
SolveResult solve_brute_force(const Model& model,
                              const BruteForceOptions& options = {});

}  // namespace ht::ilp
