#include "ilp/model.hpp"

#include <cmath>

namespace ht::ilp {

int Model::add_binary(std::string name, double objective) {
  if (name.empty()) name = "b" + std::to_string(variables_.size());
  variables_.push_back(
      Variable{VarKind::kBinary, 0.0, 1.0, objective, std::move(name)});
  return num_variables() - 1;
}

int Model::add_integer(double lower, double upper, std::string name,
                       double objective) {
  util::check_spec(lower <= upper, "Model: lower bound exceeds upper");
  if (name.empty()) name = "i" + std::to_string(variables_.size());
  variables_.push_back(
      Variable{VarKind::kInteger, lower, upper, objective, std::move(name)});
  return num_variables() - 1;
}

int Model::add_continuous(double lower, double upper, std::string name,
                          double objective) {
  util::check_spec(lower <= upper, "Model: lower bound exceeds upper");
  if (name.empty()) name = "c" + std::to_string(variables_.size());
  variables_.push_back(Variable{VarKind::kContinuous, lower, upper, objective,
                                std::move(name)});
  return num_variables() - 1;
}

void Model::add_constraint(std::vector<std::pair<int, double>> terms,
                           lp::Relation rel, double rhs) {
  for (const auto& [var, coeff] : terms) {
    (void)coeff;
    util::check_spec(var >= 0 && var < num_variables(),
                     "Model: constraint references unknown variable");
  }
  rows_.push_back(lp::Constraint{std::move(terms), rel, rhs});
}

const Variable& Model::variable(int index) const {
  util::check_spec(index >= 0 && index < num_variables(),
                   "Model: variable index out of range");
  return variables_[static_cast<std::size_t>(index)];
}

lp::LpProblem Model::relaxation() const {
  lp::LpProblem problem;
  for (const Variable& v : variables_) {
    problem.add_variable(v.lower, v.upper, v.objective, v.name);
  }
  for (const lp::Constraint& row : rows_) {
    problem.add_constraint(row.terms, row.rel, row.rhs);
  }
  return problem;
}

bool Model::is_feasible(const std::vector<double>& values, double tol) const {
  if (values.size() != variables_.size()) return false;
  for (int v = 0; v < num_variables(); ++v) {
    const Variable& var = variables_[static_cast<std::size_t>(v)];
    const double value = values[static_cast<std::size_t>(v)];
    if (value < var.lower - tol || value > var.upper + tol) return false;
    if (var.kind != VarKind::kContinuous &&
        std::abs(value - std::round(value)) > tol) {
      return false;
    }
  }
  for (const lp::Constraint& row : rows_) {
    double lhs = 0.0;
    for (const auto& [var, coeff] : row.terms) {
      lhs += coeff * values[static_cast<std::size_t>(var)];
    }
    switch (row.rel) {
      case lp::Relation::kLe:
        if (lhs > row.rhs + tol) return false;
        break;
      case lp::Relation::kGe:
        if (lhs < row.rhs - tol) return false;
        break;
      case lp::Relation::kEq:
        if (std::abs(lhs - row.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

double Model::objective_value(const std::vector<double>& values) const {
  double total = 0.0;
  for (int v = 0; v < num_variables(); ++v) {
    total += variables_[static_cast<std::size_t>(v)].objective *
             values[static_cast<std::size_t>(v)];
  }
  return total;
}

std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kFeasible:
      return "feasible";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnknown:
      return "unknown";
  }
  return "?";
}

}  // namespace ht::ilp
