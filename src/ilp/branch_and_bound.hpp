// LP-relaxation branch & bound for 0-1 / integer models.
//
// Depth-first search; each node re-solves the LP relaxation with tightened
// variable bounds, prunes on infeasibility and on bound >= incumbent, and
// branches on the most fractional integer variable (nearest-integer child
// first). When every objective coefficient is integral the bound is rounded
// up, which prunes aggressively on the paper's dollar-valued objectives.
#pragma once

#include <limits>

#include "ilp/model.hpp"

namespace ht::ilp {

struct BnbOptions {
  double time_limit_seconds = 120.0;
  long max_nodes = 5'000'000;
  double integrality_tol = 1e-6;
  lp::SimplexOptions lp_options{};
  /// Stop as soon as any feasible incumbent is found (used for feasibility
  /// probing rather than optimization).
  bool first_feasible_only = false;
  /// Known upper bound on the optimum (e.g. from a warm-start heuristic):
  /// subtrees whose LP bound reaches it are pruned. If the search then
  /// exhausts without an incumbent, kInfeasible means "nothing strictly
  /// better than the bound exists".
  double initial_upper_bound = std::numeric_limits<double>::infinity();
};

SolveResult solve_branch_and_bound(const Model& model,
                                   const BnbOptions& options = {});

}  // namespace ht::ilp
