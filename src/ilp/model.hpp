// Mixed 0-1 / integer linear model and common solve-result types.
//
// ht_core's IlpFormulation lowers the paper's equations (3)-(17) into this
// model; the solvers in this library (brute force for tests, LP-based
// branch & bound for real use) consume it.
#pragma once

#include <string>
#include <vector>

#include "lp/lp_problem.hpp"

namespace ht::ilp {

enum class VarKind { kContinuous, kBinary, kInteger };

struct Variable {
  VarKind kind = VarKind::kBinary;
  double lower = 0.0;
  double upper = 1.0;
  double objective = 0.0;
  std::string name;
};

/// A minimization MILP.
class Model {
 public:
  int add_binary(std::string name = "", double objective = 0.0);
  int add_integer(double lower, double upper, std::string name = "",
                  double objective = 0.0);
  int add_continuous(double lower, double upper, std::string name = "",
                     double objective = 0.0);

  void add_constraint(std::vector<std::pair<int, double>> terms,
                      lp::Relation rel, double rhs);

  int num_variables() const { return static_cast<int>(variables_.size()); }
  int num_constraints() const { return static_cast<int>(rows_.size()); }
  const Variable& variable(int index) const;
  const std::vector<Variable>& variables() const { return variables_; }
  const std::vector<lp::Constraint>& rows() const { return rows_; }

  /// LP relaxation (integrality dropped).
  lp::LpProblem relaxation() const;

  /// True if `values` (one per variable) satisfies every row and bound
  /// within `tol`, with integer variables integral within `tol`.
  bool is_feasible(const std::vector<double>& values, double tol = 1e-6) const;

  /// Objective value of an assignment.
  double objective_value(const std::vector<double>& values) const;

 private:
  std::vector<Variable> variables_;
  std::vector<lp::Constraint> rows_;
};

enum class SolveStatus {
  kOptimal,    ///< proved optimal
  kFeasible,   ///< stopped with an incumbent but no proof
  kInfeasible, ///< proved infeasible
  kUnknown,    ///< stopped with nothing
};

struct SolveStats {
  long nodes = 0;
  long lp_iterations = 0;
  double seconds = 0.0;
};

struct SolveResult {
  SolveStatus status = SolveStatus::kUnknown;
  double objective = 0.0;
  std::vector<double> values;
  SolveStats stats;
};

std::string to_string(SolveStatus status);

}  // namespace ht::ilp
