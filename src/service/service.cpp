#include "service/service.hpp"

#include <algorithm>
#include <cstdio>
#include <future>

#include "core/search_cache.hpp"
#include "obs/trace.hpp"

namespace ht::service {
namespace {

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

std::string fingerprint_hex(std::uint64_t fingerprint) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "0x%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buffer;
}

}  // namespace

SynthesisService::SynthesisService(const ServiceConfig& config)
    : config_(config),
      queue_(config.queue_capacity) {
  const int workers = std::max(1, config.workers);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void SynthesisService::journal_event(const obs::JournalEvent& event) {
  if (config_.journal != nullptr) config_.journal->append(event);
}

SynthesisService::~SynthesisService() { shutdown(); }

bool SynthesisService::submit(const JobInfo& info,
                              core::SynthesisRequest request, ReplyFn done,
                              std::string* error) {
  PendingJob job;
  job.info = info;
  job.request = std::move(request);
  job.admitted = std::chrono::steady_clock::now();
  if (job.has_deadline()) {
    job.deadline = job.admitted +
                   std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(
                           info.deadline_seconds));
  }
  job.cancel = std::make_shared<util::CancelToken>();
  const std::uint64_t market =
      core::spec_family_fingerprint(job.request.spec);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) {
      ++rejected_;
      if (error != nullptr) *error = "shutdown";
      return false;
    }
    job.ticket = next_ticket_++;
    ++submitted_;
    callbacks_[job.ticket] = std::move(done);
    if (!job.info.id.empty()) live_[job.info.id] = job.cancel;
    // Admit is journaled while the admission lock is still held, so admit
    // records appear in strictly increasing request-id order and always
    // precede every event a worker can produce for the job.
    obs::JournalEvent admit;
    admit.type = "admit";
    admit.req = job.ticket;
    admit.market = market;
    admit.id = job.info.id;
    journal_event(admit);
  }
  const std::uint64_t ticket = job.ticket;
  const std::string id = job.info.id;
  const std::shared_ptr<util::CancelToken> token = job.cancel;
  if (!queue_.push(std::move(job))) {
    std::lock_guard<std::mutex> lock(mutex_);
    callbacks_.erase(ticket);
    ++rejected_;
    --submitted_;
    const auto it = live_.find(id);
    if (it != live_.end() && it->second == token) live_.erase(it);
    if (error != nullptr) *error = "queue_full";
    obs::JournalEvent reject;
    reject.type = "reject";
    reject.req = ticket;
    reject.market = market;
    reject.id = id;
    journal_event(reject);
    return false;
  }
  return true;
}

ServiceReply SynthesisService::execute(const JobInfo& info,
                                       core::SynthesisRequest request) {
  auto state = std::make_shared<std::promise<ServiceReply>>();
  std::future<ServiceReply> future = state->get_future();
  std::string error;
  const bool admitted = submit(
      info, std::move(request),
      [state](const ServiceReply& reply) { state->set_value(reply); },
      &error);
  if (!admitted) {
    ServiceReply reply;
    reply.error = error;
    return reply;
  }
  return future.get();
}

bool SynthesisService::cancel(const std::string& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = live_.find(id);
  if (it == live_.end()) return false;
  it->second->request_cancel();
  return true;
}

void SynthesisService::worker_loop(int lane) {
  PendingJob job;
  while (queue_.pop(&job)) run_job(std::move(job), lane);
}

SynthesisService::MarketGroup* SynthesisService::group_for(
    std::uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<MarketGroup>& slot = groups_[fingerprint];
  if (slot == nullptr) slot = std::make_unique<MarketGroup>();
  return slot.get();
}

int SynthesisService::engine_pool_cap() const {
  const int cap = config_.engine_pool > 0 ? config_.engine_pool
                                          : config_.workers;
  return std::max(1, cap);
}

std::vector<core::WarmSnapshotPtr> SynthesisService::export_warm() const {
  // Lock order: service mutex_ (group map), then each group's own mutex
  // (snapshot pointer). run_job never holds both at once, so this nesting
  // cannot deadlock.
  std::vector<MarketGroup*> groups;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    groups.reserve(groups_.size());
    for (const auto& [fingerprint, group] : groups_) {
      groups.push_back(group.get());
    }
  }
  std::vector<core::WarmSnapshotPtr> snapshots;
  for (MarketGroup* group : groups) {
    std::lock_guard<std::mutex> pool_lock(group->mutex);
    if (group->snapshot != nullptr) snapshots.push_back(group->snapshot);
  }
  return snapshots;
}

void SynthesisService::import_warm(core::WarmSnapshotPtr snapshot) {
  if (snapshot == nullptr) return;
  MarketGroup* group = group_for(snapshot->market);
  std::lock_guard<std::mutex> pool_lock(group->mutex);
  group->snapshot = std::move(snapshot);
}

void SynthesisService::run_job(PendingJob job, int lane) {
  ServiceReply reply;
  reply.request_id = job.ticket;
  reply.warm = job.info.warm;
  reply.market = core::spec_family_fingerprint(job.request.spec);
  reply.response.kind = job.request.kind;
  // Thread the admission ticket into the engine (correlation for every
  // trace span and log line) and onto this worker thread for the
  // service-level spans recorded below. Purely observational: the engine
  // never reads it into the search.
  job.request.observability.request_id = job.ticket;
  obs::CorrelationScope correlation(job.ticket);
  obs::FlightRecorder* flight = config_.flight;

  const auto dispatched = std::chrono::steady_clock::now();
  reply.queue_seconds = seconds_between(job.admitted, dispatched);
  {
    obs::JournalEvent dequeue;
    dequeue.type = "dequeue";
    dequeue.req = job.ticket;
    dequeue.market = reply.market;
    dequeue.queue_s = reply.queue_seconds;
    journal_event(dequeue);
  }
  if (flight != nullptr) {
    // The queue wait as one span: end now, begin back-dated by the wait.
    const std::uint64_t end_ns = flight->now_ns();
    const auto wait_ns =
        static_cast<std::uint64_t>(reply.queue_seconds * 1e9);
    flight->record(lane, {"svc/queue", job.ticket,
                          end_ns > wait_ns ? end_ns - wait_ns : 0, end_ns});
  }

  if (job.cancel->cancelled()) {
    reply.cancelled = true;
    finish(job, reply);
    return;
  }
  if (job.has_deadline() && dispatched >= job.deadline) {
    // Expired in the queue: report kUnknown with the wait it did pay for
    // (the "partial stats" contract) and never touch an engine.
    reply.expired = true;
    reply.response.result.status = core::OptStatus::kUnknown;
    reply.response.result.stats.seconds = 0.0;
    finish(job, reply);
    return;
  }
  if (job.has_deadline()) {
    const double remaining =
        seconds_between(dispatched, job.deadline);
    job.request.limits.time_limit_seconds =
        std::min(job.request.limits.time_limit_seconds, remaining);
  }
  job.request.cancel = job.cancel.get();

  if (config_.journal != nullptr) {
    // Journal every improving incumbent by wrapping the progress callback.
    // Publications are serialized under the engine's progress mutex, so
    // `last_cost` needs no lock of its own. Installing a callback only
    // adds observation points — statuses, costs and bindings are
    // callback-invariant (the PR 5 identity guarantee).
    const core::ProgressFn inner = job.request.progress;
    auto last_cost =
        std::make_shared<long long>(obs::JournalEvent::kNoCost);
    const std::uint64_t ticket = job.ticket;
    const std::uint64_t market = reply.market;
    job.request.progress =
        [this, inner, last_cost, ticket,
         market](const core::SynthesisProgress& progress) {
          if (progress.have_incumbent &&
              progress.incumbent_cost != *last_cost) {
            *last_cost = progress.incumbent_cost;
            obs::JournalEvent incumbent;
            incumbent.type = "incumbent";
            incumbent.req = ticket;
            incumbent.market = market;
            incumbent.cost = progress.incumbent_cost;
            journal_event(incumbent);
          }
          if (inner) inner(progress);
        };
  }

  if (job.info.warm) {
    MarketGroup* group = group_for(reply.market);
    // Acquire: one snapshot read plus one engine checkout under the group
    // mutex — never a solve. Same-market requests only block each other
    // when every pooled engine is busy.
    std::unique_ptr<core::SynthesisEngine> engine;
    core::WarmSnapshotPtr snapshot;
    const std::uint64_t acquire_ns =
        flight != nullptr ? flight->now_ns() : 0;
    {
      std::unique_lock<std::mutex> pool_lock(group->mutex);
      const int cap = engine_pool_cap();
      group->pool_cv.wait(pool_lock, [&] {
        return !group->idle.empty() || group->engines_built < cap;
      });
      if (!group->idle.empty()) {
        engine = std::move(group->idle.back());
        group->idle.pop_back();
      } else {
        engine = std::make_unique<core::SynthesisEngine>();
        ++group->engines_built;
      }
      snapshot = group->snapshot;
      ++group->active;
      group->max_active = std::max(group->max_active, group->active);
    }
    if (flight != nullptr) {
      flight->record(lane, {"svc/acquire", job.ticket, acquire_ns,
                            flight->now_ns()});
    }
    {
      obs::JournalEvent attach;
      attach.type = "warm_attach";
      attach.req = job.ticket;
      attach.market = reply.market;
      attach.snapshot_version =
          snapshot != nullptr ? static_cast<long long>(snapshot->version)
                              : 0;
      journal_event(attach);
      obs::JournalEvent start;
      start.type = "solve_start";
      start.req = job.ticket;
      start.market = reply.market;
      journal_event(start);
    }
    // Solve over the shared immutable snapshot; the engine's own recordings
    // land in its private live/pending tiers.
    engine->adopt_warm(snapshot);
    const std::uint64_t solve_ns =
        flight != nullptr ? flight->now_ns() : 0;
    reply.response = engine->run(job.request);
    if (flight != nullptr) {
      flight->record(lane,
                     {"svc/solve", job.ticket, solve_ns, flight->now_ns()});
    }
    core::WarmDelta delta = engine->export_warm_delta();
    engine->adopt_warm(nullptr);  // detach: the engine keeps no warm state
    const std::uint64_t merge_ns =
        flight != nullptr ? flight->now_ns() : 0;
    {
      // Publish: fold this request's surviving context into the next
      // snapshot. merge_warm canonicalizes, so the published tier does not
      // depend on which pooled engine produced which entry.
      std::lock_guard<std::mutex> pool_lock(group->mutex);
      core::WarmSnapshotPtr merged =
          core::merge_warm(group->snapshot, reply.market, delta);
      if (merged != group->snapshot) {
        group->snapshot = std::move(merged);
        ++group->merges;
      }
      group->idle.push_back(std::move(engine));
      --group->active;
      group->pool_cv.notify_one();
    }
    if (flight != nullptr) {
      flight->record(lane,
                     {"svc/merge", job.ticket, merge_ns, flight->now_ns()});
    }
    const double engine_seconds = seconds_between(
        dispatched, std::chrono::steady_clock::now());
    const core::OptimizeStats& stats = reply.response.result.stats;
    std::lock_guard<std::mutex> lock(mutex_);
    ++group->requests;
    group->engine_seconds += engine_seconds;
    if (!reply.response.result.metrics.empty()) {
      ++group->metered_requests;
      group->metered_csp_ns += reply.response.result.metrics
                                   .stage(obs::Stage::kCspDispatch)
                                   .total_ns;
      group->metered_nodes += stats.nodes_total;
    }
    group->nodes_total += stats.nodes_total;
    group->combos_tried += stats.combos_tried;
    group->combos_skipped_cache += stats.combos_skipped_cache;
    group->lb_prunes += stats.lb_prunes;
    group->nogoods_learned += stats.nogoods_learned;
    group->incumbents_published += stats.incumbents_published;
    group->last_nodes_total = stats.nodes_total;
    group->last_combos_tried = stats.combos_tried;
    group->last_combos_skipped_cache = stats.combos_skipped_cache;
    group->last_lb_prunes = stats.lb_prunes;
  } else {
    obs::JournalEvent start;
    start.type = "solve_start";
    start.req = job.ticket;
    start.market = reply.market;
    journal_event(start);
    const std::uint64_t solve_ns =
        flight != nullptr ? flight->now_ns() : 0;
    core::SynthesisEngine cold;
    reply.response = cold.run(job.request);
    if (flight != nullptr) {
      flight->record(lane,
                     {"svc/solve", job.ticket, solve_ns, flight->now_ns()});
    }
  }
  reply.solve_seconds = seconds_between(
      dispatched, std::chrono::steady_clock::now());
  reply.cancelled = job.cancel->cancelled();
  finish(job, reply);
}

void SynthesisService::finish(const PendingJob& job,
                              const ServiceReply& reply) {
  ReplyFn done;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = callbacks_.find(job.ticket);
    if (it != callbacks_.end()) {
      done = std::move(it->second);
      callbacks_.erase(it);
    }
    if (!job.info.id.empty()) {
      const auto live = live_.find(job.info.id);
      if (live != live_.end() && live->second == job.cancel) {
        live_.erase(live);
      }
    }
    if (reply.ok()) {
      ++completed_;
      if (reply.cancelled) ++cancelled_;
      if (reply.expired) ++expired_;
      if (!reply.response.result.metrics.empty()) {
        metrics_.merge(reply.response.result.metrics);
      }
      // Sliding latency window (ring): overwrite the oldest sample once
      // kLatencyWindow replies have been recorded.
      const std::pair<double, double> sample{
          reply.queue_seconds, reply.queue_seconds + reply.solve_seconds};
      if (latency_samples_.size() < kLatencyWindow) {
        latency_samples_.push_back(sample);
      } else {
        latency_samples_[latency_next_] = sample;
      }
      latency_next_ = (latency_next_ + 1) % kLatencyWindow;
      queue_hist_.add(
          static_cast<long long>(reply.queue_seconds * 1e9));
      e2e_hist_.add(static_cast<long long>(
          (reply.queue_seconds + reply.solve_seconds) * 1e9));
    }
  }
  // Exactly one terminal journal line per admitted request, whichever way
  // it ended. Priority: a shutdown drop never ran; a deadline miss beats
  // the cancel flag (an expired job may also observe its token tripped);
  // everything else is a normal end.
  obs::JournalEvent terminal;
  terminal.req = job.ticket;
  terminal.market = reply.market;
  terminal.id = job.info.id;
  terminal.queue_s = reply.queue_seconds;
  if (!reply.ok()) {
    terminal.type = "drop";
    terminal.queue_s = -1.0;  // never dispatched; no measured wait
  } else if (reply.expired) {
    terminal.type = "deadline_miss";
  } else if (reply.cancelled) {
    terminal.type = "cancel";
  } else {
    terminal.type = "end";
    terminal.status = core::to_string(reply.response.result.status);
    if (reply.response.result.has_solution()) {
      terminal.cost = reply.response.result.cost;
    }
    terminal.nodes = reply.response.result.stats.nodes_total;
    terminal.solve_s = reply.solve_seconds;
  }
  journal_event(terminal);
  if (config_.flight != nullptr && reply.ok()) {
    config_.flight->note_reply(job.ticket,
                               reply.queue_seconds + reply.solve_seconds,
                               reply.expired, reply.cancelled);
  }
  if (done) done(reply);
}

Json SynthesisService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json json = Json::object();
  json.set("schema_version", kSchemaVersion);

  Json service = Json::object();
  service.set("workers", static_cast<int>(workers_.size()));
  service.set("queue_capacity",
              static_cast<long long>(queue_.capacity()));
  service.set("queue_depth", static_cast<long long>(queue_.size()));
  service.set("submitted", submitted_);
  service.set("rejected", rejected_);
  service.set("completed", completed_);
  service.set("cancelled", cancelled_);
  service.set("expired", expired_);
  json.set("service", std::move(service));

  Json markets = Json::array();
  for (const auto& [fingerprint, group] : groups_) {
    Json entry = Json::object();
    entry.set("fingerprint", fingerprint_hex(fingerprint));
    entry.set("requests", static_cast<long long>(group->requests));
    // Split the request count by whether the request collected per-stage
    // metrics: only metered ones feed the nodes/sec denominator below, so
    // readers can see how much of the traffic the derived rate covers.
    entry.set("metered_requests",
              static_cast<long long>(group->metered_requests));
    entry.set("unmetered_requests",
              static_cast<long long>(group->requests -
                                     group->metered_requests));
    entry.set("nodes_total", group->nodes_total);
    entry.set("combos_tried", group->combos_tried);
    entry.set("combos_skipped_cache", group->combos_skipped_cache);
    entry.set("lb_prunes", group->lb_prunes);
    entry.set("nogoods_learned", group->nogoods_learned);
    entry.set("incumbents_published", group->incumbents_published);
    entry.set("last_nodes_total", group->last_nodes_total);
    entry.set("last_combos_tried", group->last_combos_tried);
    entry.set("last_combos_skipped_cache",
              group->last_combos_skipped_cache);
    entry.set("last_lb_prunes", group->last_lb_prunes);
    // Wall seconds spent inside run() across this market's engines. With a
    // pooled group these overlap, so wall time is NOT a valid throughput
    // denominator — nodes_per_sec is derived from the summed metered
    // csp_dispatch nanoseconds instead (each engine meters its own CPU
    // time, so the sum is overlap-free). It is present whenever at least
    // one request collected per-stage metrics.
    entry.set("engine_seconds", group->engine_seconds);
    if (group->metered_nodes > 0 && group->metered_csp_ns > 0) {
      entry.set("nodes_per_sec",
                static_cast<double>(group->metered_nodes) /
                    (static_cast<double>(group->metered_csp_ns) * 1e-9));
      entry.set("csp_ns_per_node",
                static_cast<double>(group->metered_csp_ns) /
                    static_cast<double>(group->metered_nodes));
    }
    {
      std::lock_guard<std::mutex> pool_lock(group->mutex);
      entry.set("engines", group->engines_built);
      entry.set("max_concurrent", group->max_active);
      entry.set("snapshot_merges", static_cast<long long>(group->merges));
      if (group->snapshot != nullptr) {
        entry.set("snapshot_version",
                  static_cast<long long>(group->snapshot->version));
        entry.set("snapshot_proofs",
                  static_cast<long long>(group->snapshot->cache.proofs.size()));
        entry.set("snapshot_nogoods",
                  static_cast<long long>(
                      group->snapshot->nogoods.entries.size()));
      }
    }
    markets.push_back(std::move(entry));
  }
  json.set("markets", std::move(markets));

  // Latency distribution over the sliding reply window: queue wait and
  // end-to-end (wait + solve) percentiles. Saturation shows up here long
  // before counters move — queue_p95 grows with backlog.
  if (!latency_samples_.empty()) {
    std::vector<double> queue_waits;
    std::vector<double> e2e;
    queue_waits.reserve(latency_samples_.size());
    e2e.reserve(latency_samples_.size());
    for (const auto& [wait, total] : latency_samples_) {
      queue_waits.push_back(wait);
      e2e.push_back(total);
    }
    std::sort(queue_waits.begin(), queue_waits.end());
    std::sort(e2e.begin(), e2e.end());
    const auto percentile = [](const std::vector<double>& sorted, double p) {
      const std::size_t n = sorted.size();
      std::size_t idx = static_cast<std::size_t>(p * static_cast<double>(n));
      if (idx >= n) idx = n - 1;
      return sorted[idx];
    };
    Json latency = Json::object();
    latency.set("samples", static_cast<long long>(queue_waits.size()));
    latency.set("queue_p50_s", percentile(queue_waits, 0.50));
    latency.set("queue_p95_s", percentile(queue_waits, 0.95));
    latency.set("queue_max_s", queue_waits.back());
    latency.set("e2e_p50_s", percentile(e2e, 0.50));
    latency.set("e2e_p95_s", percentile(e2e, 0.95));
    latency.set("e2e_max_s", e2e.back());
    json.set("latency", std::move(latency));
  }

  Json metrics;
  std::string metrics_error;
  if (Json::parse(obs::to_json(metrics_), &metrics, &metrics_error)) {
    json.set("metrics", std::move(metrics));
  }
  return json;
}

std::string SynthesisService::telemetry() const {
  obs::PrometheusText prom;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++telemetry_scrapes_;
    prom.counter("thlsd_telemetry_scrapes_total",
                 "Telemetry scrapes served (monotonic per process).",
                 static_cast<double>(telemetry_scrapes_));
    prom.counter("thlsd_requests_submitted_total",
                 "Requests admitted to the queue.",
                 static_cast<double>(submitted_));
    prom.counter("thlsd_requests_rejected_total",
                 "Requests refused at admission (queue_full or shutdown).",
                 static_cast<double>(rejected_));
    prom.counter("thlsd_requests_completed_total",
                 "Requests that produced a reply.",
                 static_cast<double>(completed_));
    prom.counter("thlsd_requests_cancelled_total",
                 "Replies whose cancel token was tripped.",
                 static_cast<double>(cancelled_));
    prom.counter("thlsd_requests_expired_total",
                 "Replies that missed their deadline.",
                 static_cast<double>(expired_));
    prom.gauge("thlsd_workers", "Worker threads in the solve pool.",
               static_cast<double>(workers_.size()));
    prom.gauge("thlsd_queue_capacity", "Bounded admission queue capacity.",
               static_cast<double>(queue_.capacity()));
    prom.gauge("thlsd_queue_depth", "Jobs currently waiting in the queue.",
               static_cast<double>(queue_.size()));

    prom.histogram("thlsd_queue_wait_seconds",
                   "Queue wait of completed requests (cumulative).",
                   queue_hist_);
    prom.histogram("thlsd_e2e_latency_seconds",
                   "End-to-end latency (wait + solve) of completed "
                   "requests (cumulative).",
                   e2e_hist_);

    // Rolling-window percentile gauges over the same sliding reply window
    // stats() reports — recent behavior, unlike the histograms above.
    if (!latency_samples_.empty()) {
      std::vector<double> queue_waits;
      std::vector<double> e2e;
      queue_waits.reserve(latency_samples_.size());
      e2e.reserve(latency_samples_.size());
      for (const auto& [wait, total] : latency_samples_) {
        queue_waits.push_back(wait);
        e2e.push_back(total);
      }
      std::sort(queue_waits.begin(), queue_waits.end());
      std::sort(e2e.begin(), e2e.end());
      const auto pct = [](const std::vector<double>& sorted, double p) {
        std::size_t idx =
            static_cast<std::size_t>(p * static_cast<double>(sorted.size()));
        if (idx >= sorted.size()) idx = sorted.size() - 1;
        return sorted[idx];
      };
      prom.gauge("thlsd_latency_window_samples",
                 "Replies in the rolling latency window.",
                 static_cast<double>(queue_waits.size()));
      prom.gauge("thlsd_queue_wait_window_seconds",
                 "Rolling-window queue wait quantiles.",
                 pct(queue_waits, 0.50), "quantile=\"0.5\"");
      prom.gauge("thlsd_queue_wait_window_seconds", "",
                 pct(queue_waits, 0.95), "quantile=\"0.95\"");
      prom.gauge("thlsd_queue_wait_window_seconds", "", queue_waits.back(),
                 "quantile=\"1\"");
      prom.gauge("thlsd_e2e_latency_window_seconds",
                 "Rolling-window end-to-end latency quantiles.",
                 pct(e2e, 0.50), "quantile=\"0.5\"");
      prom.gauge("thlsd_e2e_latency_window_seconds", "", pct(e2e, 0.95),
                 "quantile=\"0.95\"");
      prom.gauge("thlsd_e2e_latency_window_seconds", "", e2e.back(),
                 "quantile=\"1\"");
    }

    for (const auto& [fingerprint, group] : groups_) {
      const std::string market =
          "market=\"" + fingerprint_hex(fingerprint) + "\"";
      prom.counter("thlsd_market_requests_total",
                   "Requests served, by vendor market.",
                   static_cast<double>(group->requests), market);
      prom.counter("thlsd_market_metered_requests_total",
                   "Requests that collected per-stage metrics, by market.",
                   static_cast<double>(group->metered_requests), market);
      prom.counter("thlsd_market_nodes_total",
                   "CSP nodes expanded, by market.",
                   static_cast<double>(group->nodes_total), market);
      std::lock_guard<std::mutex> pool_lock(group->mutex);
      prom.counter("thlsd_market_snapshot_merges_total",
                   "Warm-state deltas folded into the published snapshot.",
                   static_cast<double>(group->merges), market);
    }
  }
  // Journal / flight-recorder health, when attached: counters come from
  // those components' own locks, so read them outside mutex_.
  if (config_.journal != nullptr) {
    const obs::JournalCounters counters = config_.journal->counters();
    prom.counter("thlsd_journal_events_appended_total",
                 "Journal events accepted for writing.",
                 static_cast<double>(counters.appended));
    prom.counter("thlsd_journal_events_written_total",
                 "Journal lines flushed to disk.",
                 static_cast<double>(counters.written));
    prom.counter("thlsd_journal_events_dropped_total",
                 "Non-endpoint journal events shed under backpressure.",
                 static_cast<double>(counters.dropped));
  }
  if (config_.flight != nullptr) {
    prom.counter("thlsd_flight_dumps_total",
                 "Flight-recorder anomaly dumps written.",
                 static_cast<double>(config_.flight->dumps_written()));
  }
  return prom.str();
}

void SynthesisService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
    // Trip every live token so in-flight solves wind down promptly; their
    // replies still flow through finish() as cancelled-but-served.
    for (auto& [id, token] : live_) token->request_cancel();
  }
  queue_.close();
  for (std::thread& worker : workers_) worker.join();
  for (PendingJob& job : queue_.drain()) {
    ServiceReply reply;
    reply.error = "shutdown";
    reply.request_id = job.ticket;
    reply.response.kind = job.request.kind;
    finish(job, reply);
  }
}

}  // namespace ht::service
