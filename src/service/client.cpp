#include "service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ht::service {
namespace {

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

Client::Client(int fd) : fd_(fd) {}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<Client> Client::connect_unix(const std::string& path,
                                             std::string* error) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    fail(error, std::string("socket: ") + std::strerror(errno));
    return nullptr;
  }
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.size() >= sizeof(address.sun_path)) {
    ::close(fd);
    fail(error, "unix socket path too long");
    return nullptr;
  }
  std::strncpy(address.sun_path, path.c_str(),
               sizeof(address.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) < 0) {
    ::close(fd);
    fail(error, "connect(" + path + "): " + std::strerror(errno));
    return nullptr;
  }
  return std::unique_ptr<Client>(new Client(fd));
}

std::unique_ptr<Client> Client::connect_tcp(const std::string& host,
                                            int port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    fail(error, std::string("socket: ") + std::strerror(errno));
    return nullptr;
  }
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    ::close(fd);
    fail(error, "bad IPv4 address: " + host);
    return nullptr;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) < 0) {
    ::close(fd);
    fail(error, "connect(" + host + ":" + std::to_string(port) +
                    "): " + std::strerror(errno));
    return nullptr;
  }
  return std::unique_ptr<Client>(new Client(fd));
}

std::unique_ptr<Client> Client::connect(const std::string& endpoint,
                                        std::string* error) {
  if (endpoint.rfind("unix:", 0) == 0) {
    return connect_unix(endpoint.substr(5), error);
  }
  if (endpoint.rfind("tcp:", 0) == 0) {
    const std::string rest = endpoint.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos) {
      fail(error, "tcp endpoint must be tcp:host:port");
      return nullptr;
    }
    try {
      return connect_tcp(rest.substr(0, colon),
                         std::stoi(rest.substr(colon + 1)), error);
    } catch (const std::exception&) {
      fail(error, "bad tcp port in endpoint " + endpoint);
      return nullptr;
    }
  }
  fail(error, "endpoint must start with unix: or tcp:");
  return nullptr;
}

bool Client::send_line(const std::string& line, std::string* error) {
  const std::string framed = line + "\n";
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent,
                             framed.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail(error, std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool Client::read_line(std::string* line, std::string* error) {
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      *line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    char chunk[65536];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      return fail(error, std::string("read: ") + std::strerror(errno));
    }
    if (n == 0) return fail(error, "connection closed by server");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool Client::send_envelope(const Json& envelope, std::string* error) {
  return send_line(envelope.dump(), error);
}

bool Client::read_envelope(Json* envelope, std::string* error) {
  std::string line;
  if (!read_line(&line, error)) return false;
  std::string parse_error;
  if (!Json::parse(line, envelope, &parse_error)) {
    return fail(error, "malformed reply from server: " + parse_error);
  }
  return true;
}

Client::Reply Client::transport_error(const std::string& message) const {
  Reply reply;
  reply.error_code = "transport";
  reply.error_message = message;
  return reply;
}

Client::Reply Client::synthesize(const core::SynthesisRequest& request,
                                 const JobInfo& info) {
  std::string id = info.id;
  if (id.empty()) id = "req-" + std::to_string(next_id_++);

  Json envelope = Json::object();
  envelope.set("schema_version", kSchemaVersion);
  envelope.set("op", "synthesize");
  envelope.set("id", id);
  envelope.set("priority", info.priority);
  envelope.set("deadline_ms",
               static_cast<long long>(info.deadline_seconds * 1000.0));
  envelope.set("warm", info.warm);
  envelope.set("request", request_to_json(request));

  std::string error;
  if (!send_envelope(envelope, &error)) return transport_error(error);

  // Read until the reply tagged with our id; skip unrelated envelopes (a
  // pipelining caller should use the low-level API instead).
  while (true) {
    Json in;
    if (!read_envelope(&in, &error)) return transport_error(error);
    if (in.get("id").as_string("") != id) continue;
    Reply reply;
    reply.envelope = in;
    if (!in.get("ok").as_bool(false)) {
      reply.error_code = in.get("error").get("code").as_string("error");
      reply.error_message = in.get("error").get("message").as_string("");
      return reply;
    }
    std::string wire_error;
    if (!response_from_json(in.get("response"), &reply.response,
                            &wire_error)) {
      return transport_error("bad response document: " + wire_error);
    }
    reply.ok = true;
    return reply;
  }
}

bool Client::cancel(const std::string& id) {
  Json envelope = Json::object();
  envelope.set("schema_version", kSchemaVersion);
  envelope.set("op", "cancel");
  envelope.set("id", id);
  std::string error;
  if (!send_envelope(envelope, &error)) return false;
  while (true) {
    Json in;
    if (!read_envelope(&in, &error)) return false;
    if (in.get("op").as_string("") != "cancel_ack") continue;
    return in.get("cancelled").as_bool(false);
  }
}

std::optional<Json> Client::stats(std::string* error) {
  Json envelope = Json::object();
  envelope.set("schema_version", kSchemaVersion);
  envelope.set("op", "stats");
  if (!send_envelope(envelope, error)) return std::nullopt;
  while (true) {
    Json in;
    if (!read_envelope(&in, error)) return std::nullopt;
    if (in.get("op").as_string("") != "stats") continue;
    return in.get("stats");
  }
}

std::optional<std::string> Client::telemetry(std::string* error) {
  Json envelope = Json::object();
  envelope.set("schema_version", kSchemaVersion);
  envelope.set("op", "telemetry");
  if (!send_envelope(envelope, error)) return std::nullopt;
  while (true) {
    Json in;
    if (!read_envelope(&in, error)) return std::nullopt;
    if (in.get("op").as_string("") != "telemetry") continue;
    return in.get("text").as_string("");
  }
}

bool Client::ping() {
  Json envelope = Json::object();
  envelope.set("schema_version", kSchemaVersion);
  envelope.set("op", "ping");
  std::string error;
  if (!send_envelope(envelope, &error)) return false;
  Json in;
  while (read_envelope(&in, &error)) {
    if (in.get("op").as_string("") == "pong") return true;
  }
  return false;
}

bool Client::shutdown_server() {
  Json envelope = Json::object();
  envelope.set("schema_version", kSchemaVersion);
  envelope.set("op", "shutdown");
  std::string error;
  if (!send_envelope(envelope, &error)) return false;
  Json in;
  while (read_envelope(&in, &error)) {
    if (in.get("op").as_string("") == "shutdown_ack") return true;
  }
  return false;
}

}  // namespace ht::service
