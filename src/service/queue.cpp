#include "service/queue.hpp"

#include <algorithm>

namespace ht::service {

AdmissionQueue::AdmissionQueue(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

bool AdmissionQueue::before(const PendingJob& a, const PendingJob& b) {
  if (a.info.priority != b.info.priority) {
    return a.info.priority > b.info.priority;
  }
  if (a.has_deadline() != b.has_deadline()) return a.has_deadline();
  if (a.has_deadline() && a.deadline != b.deadline) {
    return a.deadline < b.deadline;
  }
  return a.ticket < b.ticket;
}

bool AdmissionQueue::push(PendingJob job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || jobs_.size() >= capacity_) return false;
    const auto at = std::upper_bound(
        jobs_.begin(), jobs_.end(), job,
        [](const PendingJob& a, const PendingJob& b) { return before(a, b); });
    jobs_.insert(at, std::move(job));
  }
  ready_.notify_one();
  return true;
}

bool AdmissionQueue::pop(PendingJob* out) {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [&] { return closed_ || !jobs_.empty(); });
  if (closed_) return false;
  *out = std::move(jobs_.front());
  jobs_.erase(jobs_.begin());
  return true;
}

bool AdmissionQueue::remove(std::uint64_t ticket, PendingJob* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
    if (it->ticket == ticket) {
      if (out != nullptr) *out = std::move(*it);
      jobs_.erase(it);
      return true;
    }
  }
  return false;
}

void AdmissionQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::vector<PendingJob> AdmissionQueue::drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<PendingJob> leftover = std::move(jobs_);
  jobs_.clear();
  return leftover;
}

std::size_t AdmissionQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return jobs_.size();
}

}  // namespace ht::service
