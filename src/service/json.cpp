#include "service/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/status.hpp"

namespace ht::service {
namespace {

const Json kNullJson{};
const std::string kEmptyString;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;
  int depth = 0;

  static constexpr int kMaxDepth = 96;

  bool fail(const std::string& message) {
    if (error.empty()) {
      error = message + " at byte " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char expected) {
    if (pos < text.size() && text[pos] == expected) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + expected + "'");
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) == word) {
      pos += word.size();
      return true;
    }
    return fail("invalid literal");
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    std::string result;
    while (true) {
      if (pos >= text.size()) return fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        result.push_back(c);
        continue;
      }
      if (pos >= text.size()) return fail("dangling escape");
      const char esc = text[pos++];
      switch (esc) {
        case '"': result.push_back('"'); break;
        case '\\': result.push_back('\\'); break;
        case '/': result.push_back('/'); break;
        case 'b': result.push_back('\b'); break;
        case 'f': result.push_back('\f'); break;
        case 'n': result.push_back('\n'); break;
        case 'r': result.push_back('\r'); break;
        case 't': result.push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point; surrogate pairs are rare in
          // this protocol (names and DFG text are ASCII) but handled.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (text.substr(pos, 2) != "\\u" || pos + 6 > text.size()) {
              return fail("unpaired surrogate");
            }
            pos += 2;
            unsigned low = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              low <<= 4;
              if (h >= '0' && h <= '9') {
                low |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                low |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                low |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail("bad hex digit in \\u escape");
              }
            }
            if (low < 0xDC00 || low > 0xDFFF) {
              return fail("unpaired surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return fail("unpaired surrogate");
          }
          if (code < 0x80) {
            result.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            result.push_back(static_cast<char>(0xC0 | (code >> 6)));
            result.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else if (code < 0x10000) {
            result.push_back(static_cast<char>(0xE0 | (code >> 12)));
            result.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            result.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            result.push_back(static_cast<char>(0xF0 | (code >> 18)));
            result.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            result.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            result.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    *out = std::move(result);
    return true;
  }

  bool parse_number(Json* out) {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() && std::isdigit(
               static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    bool integral = true;
    if (pos < text.size() && text[pos] == '.') {
      integral = false;
      ++pos;
      while (pos < text.size() && std::isdigit(
                 static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      integral = false;
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      while (pos < text.size() && std::isdigit(
                 static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    }
    const std::string_view token = text.substr(start, pos - start);
    if (token.empty() || token == "-") return fail("malformed number");
    if (integral) {
      long long value = 0;
      const auto [ptr, ec] = std::from_chars(
          token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        *out = Json(value);
        return true;
      }
      // Out-of-range integer: fall through to double.
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      return fail("malformed number");
    }
    *out = Json(value);
    return true;
  }

  bool parse_value(Json* out) {
    if (++depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    bool ok = false;
    switch (text[pos]) {
      case '{': {
        ++pos;
        Json object = Json::object();
        skip_ws();
        if (pos < text.size() && text[pos] == '}') {
          ++pos;
          *out = std::move(object);
          ok = true;
          break;
        }
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(&key)) return false;
          skip_ws();
          if (!consume(':')) return false;
          Json value;
          if (!parse_value(&value)) return false;
          object.set(key, std::move(value));
          skip_ws();
          if (pos < text.size() && text[pos] == ',') {
            ++pos;
            continue;
          }
          if (!consume('}')) return false;
          break;
        }
        *out = std::move(object);
        ok = true;
        break;
      }
      case '[': {
        ++pos;
        Json array = Json::array();
        skip_ws();
        if (pos < text.size() && text[pos] == ']') {
          ++pos;
          *out = std::move(array);
          ok = true;
          break;
        }
        while (true) {
          Json value;
          if (!parse_value(&value)) return false;
          array.push_back(std::move(value));
          skip_ws();
          if (pos < text.size() && text[pos] == ',') {
            ++pos;
            continue;
          }
          if (!consume(']')) return false;
          break;
        }
        *out = std::move(array);
        ok = true;
        break;
      }
      case '"': {
        std::string value;
        if (!parse_string(&value)) return false;
        *out = Json(std::move(value));
        ok = true;
        break;
      }
      case 't':
        if (!literal("true")) return false;
        *out = Json(true);
        ok = true;
        break;
      case 'f':
        if (!literal("false")) return false;
        *out = Json(false);
        ok = true;
        break;
      case 'n':
        if (!literal("null")) return false;
        *out = Json(nullptr);
        ok = true;
        break;
      default:
        ok = parse_number(out);
        break;
    }
    --depth;
    return ok;
  }
};

}  // namespace

const std::string& Json::as_string() const {
  return is_string() ? string_ : kEmptyString;
}

void Json::push_back(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) {
    throw util::InternalError("Json::push_back on a non-array value");
  }
  array_.push_back(std::move(value));
}

const Json& Json::at(std::size_t index) const {
  if (!is_array() || index >= array_.size()) return kNullJson;
  return array_[index];
}

const Json& Json::get(const std::string& key) const {
  if (!is_object()) return kNullJson;
  const auto it = object_.find(key);
  return it == object_.end() ? kNullJson : it->second;
}

Json& Json::set(const std::string& key, Json value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) {
    throw util::InternalError("Json::set on a non-object value");
  }
  return object_[key] = std::move(value);
}

std::string json_quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void Json::dump_to(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      *out += std::to_string(int_);
      break;
    case Type::kDouble: {
      if (std::isfinite(double_)) {
        char buffer[64];
        std::snprintf(buffer, sizeof buffer, "%.17g", double_);
        *out += buffer;
      } else {
        *out += "null";  // JSON has no Inf/NaN; null is the honest spelling
      }
      break;
    }
    case Type::kString:
      *out += json_quote(string_);
      break;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& item : array_) {
        if (!first) out->push_back(',');
        first = false;
        item.dump_to(out);
      }
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out->push_back(',');
        first = false;
        *out += json_quote(key);
        out->push_back(':');
        value.dump_to(out);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(&out);
  return out;
}

bool Json::parse(std::string_view text, Json* out, std::string* error) {
  Parser parser;
  parser.text = text;
  Json value;
  if (!parser.parse_value(&value)) {
    if (error != nullptr) *error = parser.error;
    return false;
  }
  parser.skip_ws();
  if (parser.pos != text.size()) {
    if (error != nullptr) {
      *error = "trailing garbage at byte " + std::to_string(parser.pos);
    }
    return false;
  }
  *out = std::move(value);
  return true;
}

}  // namespace ht::service
