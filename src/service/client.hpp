// Client side of the thlsd JSON-lines protocol (see server.hpp) — the
// library under the thls-client tool and the service tests.
//
// A Client owns one blocking connection. The high-level calls implement
// the simple request/reply discipline (send one envelope, read envelopes
// until the matching reply); the low-level send_envelope/read_envelope
// pair is exposed for callers that pipeline (submit, then cancel from the
// same or another connection, then collect the response).
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "service/queue.hpp"
#include "service/wire.hpp"

namespace ht::service {

class Client {
 public:
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  static std::unique_ptr<Client> connect_unix(const std::string& path,
                                              std::string* error);
  static std::unique_ptr<Client> connect_tcp(const std::string& host,
                                             int port, std::string* error);

  /// "unix:/path" or "tcp:host:port".
  static std::unique_ptr<Client> connect(const std::string& endpoint,
                                         std::string* error);

  // ---- low level --------------------------------------------------------
  bool send_line(const std::string& line, std::string* error);
  /// One '\n'-terminated line (stripped). False on EOF or socket error.
  bool read_line(std::string* line, std::string* error);
  bool send_envelope(const Json& envelope, std::string* error);
  bool read_envelope(Json* envelope, std::string* error);

  // ---- high level -------------------------------------------------------
  struct Reply {
    bool ok = false;
    /// Error code/message from a structured error envelope, or a local
    /// transport failure (code "transport").
    std::string error_code;
    std::string error_message;
    /// The raw reply envelope (for "service" info: warm, queue_ms, ...).
    Json envelope;
    /// Decoded wire response; meaningful when ok.
    core::SynthesisResponse response;
  };

  /// Submits one synthesize op and blocks for its tagged reply. `info.id`
  /// is used as the envelope id (one is generated if empty, so replies
  /// can always be matched).
  Reply synthesize(const core::SynthesisRequest& request,
                   const JobInfo& info = {});

  /// True when the server acknowledged AND a live job was cancelled.
  bool cancel(const std::string& id);

  std::optional<Json> stats(std::string* error = nullptr);
  /// Prometheus text-exposition body from the `telemetry` op.
  std::optional<std::string> telemetry(std::string* error = nullptr);
  bool ping();
  bool shutdown_server();

 private:
  explicit Client(int fd);

  Reply transport_error(const std::string& message) const;

  int fd_;
  std::string buffer_;
  std::uint64_t next_id_ = 1;
};

}  // namespace ht::service
