#include "service/wire.hpp"

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "dfg/parse.hpp"
#include "util/status.hpp"

namespace ht::service {
namespace {

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Rejects documents from a newer schema; absent/garbled versions are
/// indistinguishable from arbitrary JSON and rejected too.
bool check_version(const Json& json, std::string* error) {
  const Json& version = json.get("schema_version");
  if (!version.is_int()) {
    return fail(error, "missing or non-integer schema_version");
  }
  if (version.as_int() < 1 || version.as_int() > kSchemaVersion) {
    return fail(error, "unsupported schema_version " +
                           std::to_string(version.as_int()) +
                           " (this build speaks <= " +
                           std::to_string(kSchemaVersion) + ")");
  }
  return true;
}

const char* strategy_name(core::Strategy strategy) {
  return strategy == core::Strategy::kHeuristic ? "heuristic" : "exact";
}

bool parse_strategy(const std::string& name, core::Strategy* out) {
  if (name == "exact") {
    *out = core::Strategy::kExact;
    return true;
  }
  if (name == "heuristic") {
    *out = core::Strategy::kHeuristic;
    return true;
  }
  return false;
}

const char* status_name(core::OptStatus status) {
  switch (status) {
    case core::OptStatus::kOptimal: return "optimal";
    case core::OptStatus::kFeasible: return "feasible";
    case core::OptStatus::kInfeasible: return "infeasible";
    case core::OptStatus::kUnknown: return "unknown";
  }
  return "unknown";
}

bool parse_status(const std::string& name, core::OptStatus* out) {
  if (name == "optimal") *out = core::OptStatus::kOptimal;
  else if (name == "feasible") *out = core::OptStatus::kFeasible;
  else if (name == "infeasible") *out = core::OptStatus::kInfeasible;
  else if (name == "unknown") *out = core::OptStatus::kUnknown;
  else return false;
  return true;
}

bool parse_resource_class(const std::string& name, dfg::ResourceClass* out) {
  for (int c = 0; c < dfg::kNumResourceClasses; ++c) {
    const auto rc = static_cast<dfg::ResourceClass>(c);
    if (dfg::resource_class_name(rc) == name) {
      *out = rc;
      return true;
    }
  }
  return false;
}

Json license_to_json(const core::LicenseKey& license) {
  Json json = Json::object();
  json.set("vendor", license.vendor);
  json.set("class", dfg::resource_class_name(license.rc));
  return json;
}

bool license_from_json(const Json& json, core::LicenseKey* out,
                       std::string* error) {
  if (!json.is_object()) return fail(error, "license entry is not an object");
  core::LicenseKey license;
  license.vendor = static_cast<vendor::VendorId>(
      json.get("vendor").as_int(-1));
  if (license.vendor < 0) return fail(error, "license entry missing vendor");
  if (!parse_resource_class(json.get("class").as_string(), &license.rc)) {
    return fail(error, "license entry has unknown class '" +
                           json.get("class").as_string() + "'");
  }
  *out = license;
  return true;
}

Json solution_to_json(const core::Solution& solution) {
  Json json = Json::object();
  json.set("num_ops", solution.num_ops());
  json.set("with_recovery", solution.with_recovery());
  Json bindings = Json::array();
  for (const core::CopyRef& ref : solution.all_copies()) {
    const core::Binding& binding = solution.at(ref);
    if (!binding.is_set()) continue;
    Json entry = Json::object();
    entry.set("kind", static_cast<int>(ref.kind));
    entry.set("op", ref.op);
    entry.set("cycle", binding.cycle);
    entry.set("vendor", binding.vendor);
    entry.set("instance", binding.instance);
    bindings.push_back(std::move(entry));
  }
  json.set("bindings", std::move(bindings));
  return json;
}

bool solution_from_json(const Json& json, core::Solution* out,
                        std::string* error) {
  if (!json.is_object()) return fail(error, "solution is not an object");
  const int num_ops = static_cast<int>(json.get("num_ops").as_int(0));
  if (num_ops <= 0) return fail(error, "solution has non-positive num_ops");
  core::Solution solution(num_ops, json.get("with_recovery").as_bool(false));
  const Json& bindings = json.get("bindings");
  if (!bindings.is_array()) {
    return fail(error, "solution.bindings is not an array");
  }
  for (const Json& entry : bindings.items()) {
    const long long kind = entry.get("kind").as_int(-1);
    const long long op = entry.get("op").as_int(-1);
    if (kind < 0 || kind >= core::kNumCopyKinds || op < 0 || op >= num_ops) {
      return fail(error, "solution binding has out-of-range kind/op");
    }
    core::Binding binding;
    binding.cycle = static_cast<int>(entry.get("cycle").as_int(-1));
    binding.vendor = static_cast<vendor::VendorId>(
        entry.get("vendor").as_int(-1));
    binding.instance = static_cast<int>(entry.get("instance").as_int(-1));
    if (!binding.is_set()) {
      return fail(error, "solution binding is incomplete");
    }
    solution.at(static_cast<core::CopyKind>(kind),
                static_cast<dfg::OpId>(op)) = binding;
  }
  *out = std::move(solution);
  return true;
}

Json stats_to_json(const core::OptimizeStats& stats) {
  Json json = Json::object();
  json.set("combos_tried", stats.combos_tried);
  json.set("combos_skipped_screen", stats.combos_skipped_screen);
  json.set("combos_skipped_cache", stats.combos_skipped_cache);
  json.set("unknown_combos", stats.unknown_combos);
  json.set("csp_nodes", stats.csp_nodes);
  json.set("nodes_total", stats.nodes_total);
  json.set("nogoods_learned", stats.nogoods_learned);
  json.set("backjumps", stats.backjumps);
  json.set("restarts", stats.restarts);
  json.set("lb_prunes", stats.lb_prunes);
  json.set("lb_lp_solves", stats.lb_lp_solves);
  json.set("nogood_watch_visits", stats.nogood_watch_visits);
  json.set("incumbents_published", stats.incumbents_published);
  json.set("sls_steps", stats.sls_steps);
  json.set("best_source", stats.best_source);
  json.set("time_to_incumbent_seconds", stats.time_to_incumbent_seconds);
  json.set("time_to_best_seconds", stats.time_to_best_seconds);
  json.set("seconds", stats.seconds);
  return json;
}

void stats_from_json(const Json& json, core::OptimizeStats* out) {
  out->combos_tried = json.get("combos_tried").as_int(0);
  out->combos_skipped_screen = json.get("combos_skipped_screen").as_int(0);
  out->combos_skipped_cache = json.get("combos_skipped_cache").as_int(0);
  out->unknown_combos = json.get("unknown_combos").as_int(0);
  out->csp_nodes = json.get("csp_nodes").as_int(0);
  out->nodes_total = json.get("nodes_total").as_int(0);
  out->nogoods_learned = json.get("nogoods_learned").as_int(0);
  out->backjumps = json.get("backjumps").as_int(0);
  out->restarts = json.get("restarts").as_int(0);
  out->lb_prunes = json.get("lb_prunes").as_int(0);
  out->lb_lp_solves = json.get("lb_lp_solves").as_int(0);
  out->nogood_watch_visits = json.get("nogood_watch_visits").as_int(0);
  out->incumbents_published = json.get("incumbents_published").as_int(0);
  out->sls_steps = json.get("sls_steps").as_int(0);
  // Portfolio attribution defaults are sentinels, not zeros: pre-portfolio
  // peers simply omit the keys.
  out->best_source =
      static_cast<int>(json.get("best_source").as_int(-1));
  out->time_to_incumbent_seconds =
      json.get("time_to_incumbent_seconds").as_double(-1.0);
  out->time_to_best_seconds =
      json.get("time_to_best_seconds").as_double(-1.0);
  out->seconds = json.get("seconds").as_double(0.0);
}

}  // namespace

// ---- spec ---------------------------------------------------------------

Json spec_to_json(const core::ProblemSpec& spec) {
  Json json = Json::object();
  json.set("graph", dfg::to_text(spec.graph));

  Json catalog = Json::object();
  catalog.set("num_vendors", spec.catalog.num_vendors());
  Json offers = Json::array();
  for (vendor::VendorId v = 0; v < spec.catalog.num_vendors(); ++v) {
    for (int c = 0; c < dfg::kNumResourceClasses; ++c) {
      const auto rc = static_cast<dfg::ResourceClass>(c);
      if (!spec.catalog.offers(v, rc)) continue;
      const vendor::IpOffer& offer = spec.catalog.offer(v, rc);
      Json entry = Json::object();
      entry.set("vendor", v);
      entry.set("class", dfg::resource_class_name(rc));
      entry.set("area", offer.area);
      entry.set("cost", offer.cost);
      offers.push_back(std::move(entry));
    }
  }
  catalog.set("offers", std::move(offers));
  json.set("catalog", std::move(catalog));

  json.set("lambda_detection", spec.lambda_detection);
  json.set("lambda_recovery", spec.lambda_recovery);
  json.set("with_recovery", spec.with_recovery);
  json.set("area_limit", spec.area_limit);
  json.set("max_instances_per_offer", spec.max_instances_per_offer);

  Json latency = Json::array();
  for (const int cycles : spec.class_latency) latency.push_back(cycles);
  json.set("class_latency", std::move(latency));

  Json rules = Json::object();
  rules.set("detection_same_op", spec.rules.detection_same_op);
  rules.set("detection_parent_child", spec.rules.detection_parent_child);
  rules.set("detection_sibling", spec.rules.detection_sibling);
  rules.set("sibling_diversity_all_copies",
            spec.rules.sibling_diversity_all_copies);
  rules.set("recovery_same_op", spec.rules.recovery_same_op);
  rules.set("recovery_close_pairs", spec.rules.recovery_close_pairs);
  json.set("rules", std::move(rules));

  Json pairs = Json::array();
  for (const auto& [a, b] : spec.closely_related) {
    Json pair = Json::array();
    pair.push_back(a);
    pair.push_back(b);
    pairs.push_back(std::move(pair));
  }
  json.set("closely_related", std::move(pairs));
  return json;
}

bool spec_from_json(const Json& json, core::ProblemSpec* out,
                    std::string* error) {
  if (!json.is_object()) return fail(error, "spec is not an object");
  core::ProblemSpec spec;
  try {
    spec.graph = dfg::parse_dfg(json.get("graph").as_string());
  } catch (const util::Error& parse_error) {
    return fail(error, std::string("spec.graph: ") + parse_error.what());
  }

  const Json& catalog = json.get("catalog");
  const int num_vendors =
      static_cast<int>(catalog.get("num_vendors").as_int(0));
  if (num_vendors < 1 || num_vendors > core::kMaxVendors) {
    return fail(error, "spec.catalog.num_vendors out of range");
  }
  vendor::Catalog market(num_vendors);
  const Json& offers = catalog.get("offers");
  if (!offers.is_array()) {
    return fail(error, "spec.catalog.offers is not an array");
  }
  for (const Json& entry : offers.items()) {
    core::LicenseKey license;
    if (!license_from_json(entry, &license, error)) return false;
    if (license.vendor >= num_vendors) {
      return fail(error, "spec.catalog offer names an out-of-range vendor");
    }
    vendor::IpOffer offer;
    offer.area = static_cast<int>(entry.get("area").as_int(0));
    offer.cost = static_cast<int>(entry.get("cost").as_int(0));
    market.set_offer(license.vendor, license.rc, offer);
  }
  spec.catalog = std::move(market);

  spec.lambda_detection =
      static_cast<int>(json.get("lambda_detection").as_int(0));
  spec.lambda_recovery =
      static_cast<int>(json.get("lambda_recovery").as_int(0));
  spec.with_recovery = json.get("with_recovery").as_bool(true);
  spec.area_limit = json.get("area_limit").as_int(0);
  spec.max_instances_per_offer =
      static_cast<int>(json.get("max_instances_per_offer").as_int(0));

  const Json& latency = json.get("class_latency");
  if (latency.is_array()) {
    if (latency.size() != spec.class_latency.size()) {
      return fail(error, "spec.class_latency must have " +
                             std::to_string(spec.class_latency.size()) +
                             " entries");
    }
    for (std::size_t c = 0; c < spec.class_latency.size(); ++c) {
      spec.class_latency[c] = static_cast<int>(latency.at(c).as_int(1));
    }
  }

  const Json& rules = json.get("rules");
  spec.rules.detection_same_op =
      rules.get("detection_same_op").as_bool(spec.rules.detection_same_op);
  spec.rules.detection_parent_child =
      rules.get("detection_parent_child")
          .as_bool(spec.rules.detection_parent_child);
  spec.rules.detection_sibling =
      rules.get("detection_sibling").as_bool(spec.rules.detection_sibling);
  spec.rules.sibling_diversity_all_copies =
      rules.get("sibling_diversity_all_copies")
          .as_bool(spec.rules.sibling_diversity_all_copies);
  spec.rules.recovery_same_op =
      rules.get("recovery_same_op").as_bool(spec.rules.recovery_same_op);
  spec.rules.recovery_close_pairs =
      rules.get("recovery_close_pairs")
          .as_bool(spec.rules.recovery_close_pairs);

  const Json& pairs = json.get("closely_related");
  if (pairs.is_array()) {
    for (const Json& pair : pairs.items()) {
      if (!pair.is_array() || pair.size() != 2) {
        return fail(error, "spec.closely_related entries must be pairs");
      }
      spec.closely_related.emplace_back(
          static_cast<dfg::OpId>(pair.at(0).as_int(-1)),
          static_cast<dfg::OpId>(pair.at(1).as_int(-1)));
    }
  }

  try {
    spec.validate();
  } catch (const util::Error& spec_error) {
    return fail(error, std::string("spec: ") + spec_error.what());
  }
  *out = std::move(spec);
  return true;
}

// ---- result -------------------------------------------------------------

Json result_to_json(const core::OptimizeResult& result) {
  Json json = Json::object();
  json.set("status", status_name(result.status));
  json.set("cost", result.cost);
  if (result.has_solution()) {
    json.set("solution", solution_to_json(result.solution));
  }
  json.set("stats", stats_to_json(result.stats));
  if (!result.metrics.empty()) {
    Json metrics;
    std::string metrics_error;
    if (Json::parse(obs::to_json(result.metrics), &metrics,
                    &metrics_error)) {
      json.set("metrics", std::move(metrics));
    }
  }
  return json;
}

bool result_from_json(const Json& json, core::OptimizeResult* out,
                      std::string* error) {
  if (!json.is_object()) return fail(error, "result is not an object");
  core::OptimizeResult result;
  if (!parse_status(json.get("status").as_string(), &result.status)) {
    return fail(error, "result has unknown status '" +
                           json.get("status").as_string() + "'");
  }
  result.cost = json.get("cost").as_int(0);
  if (result.has_solution()) {
    if (!solution_from_json(json.get("solution"), &result.solution, error)) {
      return false;
    }
  }
  stats_from_json(json.get("stats"), &result.stats);
  if (json.has("metrics") &&
      !obs::parse_metrics_json(json.get("metrics").dump(),
                               &result.metrics)) {
    return fail(error, "result.metrics does not parse as SolveMetrics");
  }
  *out = std::move(result);
  return true;
}

// ---- request ------------------------------------------------------------

Json request_to_json(const core::SynthesisRequest& request) {
  Json json = Json::object();
  json.set("schema_version", kSchemaVersion);
  json.set("kind", core::request_kind_name(request.kind));
  json.set("spec", spec_to_json(request.spec));
  json.set("strategy", strategy_name(request.strategy));

  Json limits = Json::object();
  limits.set("time_limit_seconds", request.limits.time_limit_seconds);
  limits.set("csp_node_limit",
             static_cast<long long>(request.limits.csp_node_limit));
  limits.set("heuristic_restarts", request.limits.heuristic_restarts);
  limits.set("heuristic_node_limit",
             static_cast<long long>(request.limits.heuristic_node_limit));
  limits.set("max_combos", static_cast<long long>(request.limits.max_combos));
  limits.set("intra_palette_split", request.limits.intra_palette_split);
  json.set("limits", std::move(limits));

  Json parallelism = Json::object();
  parallelism.set("threads", request.parallelism.threads);
  json.set("parallelism", std::move(parallelism));

  Json pruning = Json::object();
  pruning.set("dominance_cache", request.pruning.dominance_cache);
  pruning.set("static_screens", request.pruning.static_screens);
  pruning.set("nogood_learning", request.pruning.nogood_learning);
  pruning.set("cost_bounds", request.pruning.cost_bounds);
  pruning.set("lp_bound", request.pruning.lp_bound);
  json.set("pruning", std::move(pruning));

  Json portfolio = Json::object();
  portfolio.set("enabled", request.portfolio.enabled);
  portfolio.set("greedy_member", request.portfolio.greedy_member);
  portfolio.set("sls_member", request.portfolio.sls_member);
  portfolio.set("sls_restarts", request.portfolio.sls_restarts);
  portfolio.set("sls_perturbations", request.portfolio.sls_perturbations);
  json.set("portfolio", std::move(portfolio));

  Json observability = Json::object();
  observability.set("metrics", request.observability.metrics);
  json.set("observability", std::move(observability));

  json.set("seed", static_cast<long long>(request.seed));
  json.set("lambda_total", request.lambda_total);

  Json sweep = Json::array();
  for (const long long value : request.sweep_values) sweep.push_back(value);
  json.set("sweep_values", std::move(sweep));

  Json banned = Json::array();
  for (const core::LicenseKey& license : request.banned) {
    banned.push_back(license_to_json(license));
  }
  json.set("banned", std::move(banned));
  return json;
}

std::string serialize_request(const core::SynthesisRequest& request) {
  return request_to_json(request).dump();
}

bool request_from_json(const Json& json, core::SynthesisRequest* out,
                       std::string* error) {
  if (!json.is_object()) return fail(error, "request is not an object");
  if (!check_version(json, error)) return false;
  core::SynthesisRequest request;
  if (json.has("kind") &&
      !core::parse_request_kind(json.get("kind").as_string(),
                                &request.kind)) {
    return fail(error, "request has unknown kind '" +
                           json.get("kind").as_string() + "'");
  }
  if (!spec_from_json(json.get("spec"), &request.spec, error)) return false;
  if (json.has("strategy") &&
      !parse_strategy(json.get("strategy").as_string(), &request.strategy)) {
    return fail(error, "request has unknown strategy '" +
                           json.get("strategy").as_string() + "'");
  }

  const Json& limits = json.get("limits");
  request.limits.time_limit_seconds =
      limits.get("time_limit_seconds")
          .as_double(request.limits.time_limit_seconds);
  request.limits.csp_node_limit = static_cast<long>(
      limits.get("csp_node_limit").as_int(request.limits.csp_node_limit));
  request.limits.heuristic_restarts = static_cast<int>(
      limits.get("heuristic_restarts")
          .as_int(request.limits.heuristic_restarts));
  request.limits.heuristic_node_limit = static_cast<long>(
      limits.get("heuristic_node_limit")
          .as_int(request.limits.heuristic_node_limit));
  request.limits.max_combos = static_cast<long>(
      limits.get("max_combos").as_int(request.limits.max_combos));
  request.limits.intra_palette_split = static_cast<int>(
      limits.get("intra_palette_split")
          .as_int(request.limits.intra_palette_split));

  request.parallelism.threads = static_cast<int>(
      json.get("parallelism").get("threads")
          .as_int(request.parallelism.threads));

  const Json& pruning = json.get("pruning");
  request.pruning.dominance_cache =
      pruning.get("dominance_cache").as_bool(request.pruning.dominance_cache);
  request.pruning.static_screens =
      pruning.get("static_screens").as_bool(request.pruning.static_screens);
  request.pruning.nogood_learning =
      pruning.get("nogood_learning").as_bool(request.pruning.nogood_learning);
  request.pruning.cost_bounds =
      pruning.get("cost_bounds").as_bool(request.pruning.cost_bounds);
  request.pruning.lp_bound =
      pruning.get("lp_bound").as_bool(request.pruning.lp_bound);

  const Json& portfolio = json.get("portfolio");
  request.portfolio.enabled =
      portfolio.get("enabled").as_bool(request.portfolio.enabled);
  request.portfolio.greedy_member =
      portfolio.get("greedy_member").as_bool(request.portfolio.greedy_member);
  request.portfolio.sls_member =
      portfolio.get("sls_member").as_bool(request.portfolio.sls_member);
  request.portfolio.sls_restarts = static_cast<int>(
      portfolio.get("sls_restarts").as_int(request.portfolio.sls_restarts));
  request.portfolio.sls_perturbations = static_cast<int>(
      portfolio.get("sls_perturbations")
          .as_int(request.portfolio.sls_perturbations));

  request.observability.metrics =
      json.get("observability").get("metrics")
          .as_bool(request.observability.metrics);

  request.seed =
      static_cast<std::uint64_t>(json.get("seed").as_int(
          static_cast<long long>(request.seed)));
  request.lambda_total =
      static_cast<int>(json.get("lambda_total").as_int(0));

  const Json& sweep = json.get("sweep_values");
  if (sweep.is_array()) {
    for (const Json& value : sweep.items()) {
      request.sweep_values.push_back(value.as_int(0));
    }
  }

  const Json& banned = json.get("banned");
  if (banned.is_array()) {
    for (const Json& entry : banned.items()) {
      core::LicenseKey license;
      if (!license_from_json(entry, &license, error)) return false;
      request.banned.insert(license);
    }
  }
  *out = std::move(request);
  return true;
}

bool parse_request(std::string_view text, core::SynthesisRequest* out,
                   std::string* error) {
  Json json;
  if (!Json::parse(text, &json, error)) return false;
  return request_from_json(json, out, error);
}

// ---- response -----------------------------------------------------------

Json response_to_json(const core::SynthesisResponse& response) {
  Json json = Json::object();
  json.set("schema_version", kSchemaVersion);
  json.set("kind", core::request_kind_name(response.kind));
  json.set("result", result_to_json(response.result));
  json.set("lambda_detection", response.lambda_detection);
  json.set("lambda_recovery", response.lambda_recovery);
  Json frontier = Json::array();
  for (const core::FrontierPoint& point : response.frontier) {
    Json entry = Json::object();
    entry.set("constraint", point.constraint);
    entry.set("result", result_to_json(point.result));
    frontier.push_back(std::move(entry));
  }
  json.set("frontier", std::move(frontier));
  return json;
}

std::string serialize_response(const core::SynthesisResponse& response) {
  return response_to_json(response).dump();
}

bool response_from_json(const Json& json, core::SynthesisResponse* out,
                        std::string* error) {
  if (!json.is_object()) return fail(error, "response is not an object");
  if (!check_version(json, error)) return false;
  core::SynthesisResponse response;
  if (json.has("kind") &&
      !core::parse_request_kind(json.get("kind").as_string(),
                                &response.kind)) {
    return fail(error, "response has unknown kind '" +
                           json.get("kind").as_string() + "'");
  }
  if (!result_from_json(json.get("result"), &response.result, error)) {
    return false;
  }
  response.lambda_detection =
      static_cast<int>(json.get("lambda_detection").as_int(0));
  response.lambda_recovery =
      static_cast<int>(json.get("lambda_recovery").as_int(0));
  const Json& frontier = json.get("frontier");
  if (frontier.is_array()) {
    for (const Json& entry : frontier.items()) {
      core::FrontierPoint point;
      point.constraint = entry.get("constraint").as_int(0);
      if (!result_from_json(entry.get("result"), &point.result, error)) {
        return false;
      }
      response.frontier.push_back(std::move(point));
    }
  }
  *out = std::move(response);
  return true;
}

bool parse_response(std::string_view text, core::SynthesisResponse* out,
                    std::string* error) {
  Json json;
  if (!Json::parse(text, &json, error)) return false;
  return response_from_json(json, out, error);
}

// ---- warm-state snapshots -----------------------------------------------

namespace {

std::string u64_hex(std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "0x%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

bool u64_from_hex(const Json& json, std::uint64_t* out) {
  const std::string text = json.as_string();
  if (text.size() < 3 || text[0] != '0' || (text[1] != 'x' && text[1] != 'X')) {
    return false;
  }
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str() + 2, &end, 16);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<std::uint64_t>(value);
  return true;
}

Json signature_to_json(const core::PaletteSignature& sig) {
  Json json = Json::object();
  Json masks = Json::array();
  for (std::uint64_t mask : sig.masks) masks.push_back(u64_hex(mask));
  json.set("masks", std::move(masks));
  json.set("lambda_detection", sig.lambda_detection);
  json.set("lambda_recovery", sig.lambda_recovery);
  json.set("area_limit", sig.area_limit);
  return json;
}

bool signature_from_json(const Json& json, core::PaletteSignature* out,
                         std::string* error) {
  if (!json.is_object()) return fail(error, "signature is not an object");
  core::PaletteSignature sig;
  const Json& masks = json.get("masks");
  if (!masks.is_array() ||
      masks.items().size() != dfg::kNumResourceClasses) {
    return fail(error, "signature.masks must have " +
                           std::to_string(dfg::kNumResourceClasses) +
                           " entries");
  }
  for (std::size_t cls = 0; cls < dfg::kNumResourceClasses; ++cls) {
    if (!u64_from_hex(masks.items()[cls], &sig.masks[cls])) {
      return fail(error, "signature.masks entry is not a hex string");
    }
  }
  sig.lambda_detection =
      static_cast<int>(json.get("lambda_detection").as_int(0));
  sig.lambda_recovery =
      static_cast<int>(json.get("lambda_recovery").as_int(0));
  sig.area_limit = json.get("area_limit").as_int(0);
  *out = sig;
  return true;
}

Json offer_areas_to_json(const std::vector<long long>& areas) {
  Json json = Json::array();
  for (long long area : areas) json.push_back(area);
  return json;
}

void offer_areas_from_json(const Json& json, std::vector<long long>* out) {
  if (!json.is_array()) return;
  for (const Json& entry : json.items()) out->push_back(entry.as_int(-1));
}

}  // namespace

Json warm_snapshot_to_json(const core::WarmSnapshot& snapshot) {
  Json json = Json::object();
  json.set("schema_version", kSchemaVersion);
  json.set("market", u64_hex(snapshot.market));
  json.set("version", static_cast<long long>(snapshot.version));

  Json cache = Json::object();
  cache.set("fingerprint", u64_hex(snapshot.cache.fingerprint));
  cache.set("offer_areas", offer_areas_to_json(snapshot.cache.offer_areas));
  Json proofs = Json::array();
  for (const core::CacheProof& proof : snapshot.cache.proofs) {
    Json entry = Json::object();
    entry.set("sig", signature_to_json(proof.sig));
    entry.set("cost", proof.combo_cost);
    proofs.push_back(std::move(entry));
  }
  cache.set("proofs", std::move(proofs));
  Json memos = Json::array();
  for (const core::LpMemo& memo : snapshot.cache.lp_memos) {
    Json entry = Json::object();
    entry.set("sig", signature_to_json(memo.sig));
    entry.set("digest", u64_hex(memo.cost_digest));
    entry.set("bound", memo.bound);
    memos.push_back(std::move(entry));
  }
  cache.set("lp_memos", std::move(memos));
  json.set("cache", std::move(cache));

  Json nogoods = Json::object();
  nogoods.set("fingerprint", u64_hex(snapshot.nogoods.fingerprint));
  nogoods.set("offer_areas",
              offer_areas_to_json(snapshot.nogoods.offer_areas));
  Json entries = Json::array();
  for (const core::SealedNogood& sealed : snapshot.nogoods.entries) {
    Json entry = Json::object();
    entry.set("guard", signature_to_json(sealed.guard));
    entry.set("cost", sealed.combo_cost);
    // Compact literal form: [copy, vendor, cycle_lo, cycle_hi] per lit.
    Json lits = Json::array();
    for (const core::NogoodLit& lit : sealed.nogood.lits) {
      Json tuple = Json::array();
      tuple.push_back(lit.copy);
      tuple.push_back(lit.vendor);
      tuple.push_back(lit.cycle_lo);
      tuple.push_back(lit.cycle_hi);
      lits.push_back(std::move(tuple));
    }
    entry.set("lits", std::move(lits));
    entries.push_back(std::move(entry));
  }
  nogoods.set("entries", std::move(entries));
  json.set("nogoods", std::move(nogoods));
  return json;
}

std::string serialize_warm_snapshot(const core::WarmSnapshot& snapshot) {
  return warm_snapshot_to_json(snapshot).dump();
}

bool warm_snapshot_from_json(const Json& json, core::WarmSnapshot* out,
                             std::string* error) {
  if (!json.is_object()) {
    return fail(error, "warm snapshot is not an object");
  }
  if (!check_version(json, error)) return false;
  core::WarmSnapshot snapshot;
  if (!u64_from_hex(json.get("market"), &snapshot.market)) {
    return fail(error, "warm snapshot missing hex market fingerprint");
  }
  snapshot.version =
      static_cast<std::uint64_t>(json.get("version").as_int(0));

  const Json& cache = json.get("cache");
  if (cache.is_object()) {
    if (!u64_from_hex(cache.get("fingerprint"),
                      &snapshot.cache.fingerprint)) {
      return fail(error, "warm snapshot cache missing hex fingerprint");
    }
    offer_areas_from_json(cache.get("offer_areas"),
                          &snapshot.cache.offer_areas);
    const Json& proofs = cache.get("proofs");
    if (proofs.is_array()) {
      for (const Json& entry : proofs.items()) {
        core::CacheProof proof;
        if (!signature_from_json(entry.get("sig"), &proof.sig, error)) {
          return false;
        }
        proof.combo_cost = entry.get("cost").as_int(0);
        snapshot.cache.proofs.push_back(proof);
      }
    }
    const Json& memos = cache.get("lp_memos");
    if (memos.is_array()) {
      for (const Json& entry : memos.items()) {
        core::LpMemo memo;
        if (!signature_from_json(entry.get("sig"), &memo.sig, error)) {
          return false;
        }
        if (!u64_from_hex(entry.get("digest"), &memo.cost_digest)) {
          return fail(error, "lp memo missing hex digest");
        }
        memo.bound = entry.get("bound").as_int(0);
        snapshot.cache.lp_memos.push_back(memo);
      }
    }
  }

  const Json& nogoods = json.get("nogoods");
  if (nogoods.is_object()) {
    if (!u64_from_hex(nogoods.get("fingerprint"),
                      &snapshot.nogoods.fingerprint)) {
      return fail(error, "warm snapshot nogoods missing hex fingerprint");
    }
    offer_areas_from_json(nogoods.get("offer_areas"),
                          &snapshot.nogoods.offer_areas);
    const Json& entries = nogoods.get("entries");
    if (entries.is_array()) {
      for (const Json& entry : entries.items()) {
        core::SealedNogood sealed;
        if (!signature_from_json(entry.get("guard"), &sealed.guard, error)) {
          return false;
        }
        sealed.combo_cost = entry.get("cost").as_int(0);
        const Json& lits = entry.get("lits");
        if (lits.is_array()) {
          for (const Json& tuple : lits.items()) {
            if (!tuple.is_array() || tuple.items().size() != 4) {
              return fail(error, "nogood lit is not a 4-tuple");
            }
            core::NogoodLit lit;
            lit.copy = static_cast<int>(tuple.items()[0].as_int(0));
            lit.vendor = static_cast<int>(tuple.items()[1].as_int(0));
            lit.cycle_lo = static_cast<int>(tuple.items()[2].as_int(0));
            lit.cycle_hi = static_cast<int>(tuple.items()[3].as_int(0));
            sealed.nogood.lits.push_back(lit);
          }
        }
        snapshot.nogoods.entries.push_back(std::move(sealed));
      }
    }
  }
  *out = std::move(snapshot);
  return true;
}

bool parse_warm_snapshot(std::string_view text, core::WarmSnapshot* out,
                         std::string* error) {
  Json json;
  if (!Json::parse(text, &json, error)) return false;
  return warm_snapshot_from_json(json, out, error);
}

}  // namespace ht::service
