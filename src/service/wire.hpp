// Versioned JSON serialization of the canonical SynthesisRequest /
// SynthesisResponse pair (core/engine.hpp) — the one wire format shared by
// the thls CLI, the thlsd daemon, thls-client, and the bench harness.
//
// Versioning contract. Every serialized document carries
// `"schema_version": N`. A reader accepts any document whose version is
// <= kSchemaVersion and *tolerates unknown fields* (they are ignored), so
// version N+1 writers that only add fields interoperate with version N
// readers in both directions; a reader rejects documents from a *newer*
// major schema with a structured error rather than misreading them.
// Missing optional fields take the C++ default of the target struct, so a
// minimal request is just {"schema_version":1,"spec":{...}}.
//
// Non-wire fields. ProgressFn and the CancelToken pointer are process-local
// and do not serialize; the daemon attaches its own token per request.
// OptimizeResult::metrics embeds the obs::to_json document verbatim.
#pragma once

#include <string>
#include <string_view>

#include "core/engine.hpp"
#include "service/json.hpp"

namespace ht::service {

/// Current wire schema. Bump only for changes a tolerant reader cannot
/// absorb (renames, semantic changes); pure field additions do not bump.
inline constexpr int kSchemaVersion = 1;

// ---- request ------------------------------------------------------------

/// Full document including "schema_version".
Json request_to_json(const core::SynthesisRequest& request);
std::string serialize_request(const core::SynthesisRequest& request);

/// Tolerant read: unknown fields ignored, absent fields defaulted. Returns
/// false with a human-readable reason on malformed structure, an
/// unsupported schema_version, or a spec that fails its own validation.
/// `out` is untouched on failure.
bool request_from_json(const Json& json, core::SynthesisRequest* out,
                       std::string* error);
bool parse_request(std::string_view text, core::SynthesisRequest* out,
                   std::string* error);

// ---- response -----------------------------------------------------------

Json response_to_json(const core::SynthesisResponse& response);
std::string serialize_response(const core::SynthesisResponse& response);

bool response_from_json(const Json& json, core::SynthesisResponse* out,
                        std::string* error);
bool parse_response(std::string_view text, core::SynthesisResponse* out,
                    std::string* error);

// ---- warm-state snapshots (thlsd --warm-dir persistence) ----------------

/// Serializes a published WarmSnapshot (core/warm_state.hpp). 64-bit
/// fingerprints, palette masks and cost digests travel as "0x…" hex
/// strings (JSON numbers are signed 64-bit in this DOM; hex strings
/// round-trip the full unsigned range and match the stats envelope's
/// fingerprint rendering).
Json warm_snapshot_to_json(const core::WarmSnapshot& snapshot);
std::string serialize_warm_snapshot(const core::WarmSnapshot& snapshot);

/// Tolerant read under the same versioning contract as requests: unknown
/// fields ignored, absent lists empty, newer schema_version rejected.
bool warm_snapshot_from_json(const Json& json, core::WarmSnapshot* out,
                             std::string* error);
bool parse_warm_snapshot(std::string_view text, core::WarmSnapshot* out,
                         std::string* error);

// ---- shared pieces (used by tests and the /stats endpoint) --------------

Json spec_to_json(const core::ProblemSpec& spec);
bool spec_from_json(const Json& json, core::ProblemSpec* out,
                    std::string* error);

Json result_to_json(const core::OptimizeResult& result);
bool result_from_json(const Json& json, core::OptimizeResult* out,
                      std::string* error);

}  // namespace ht::service
