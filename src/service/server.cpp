#include "service/server.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ht::service {
namespace {

/// EINTR-safe full write with SIGPIPE suppressed (a peer that hung up
/// must not kill the daemon).
bool write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

/// One client socket plus the lock serializing writers to it: the
/// connection's reader thread (errors, acks) and any worker thread
/// delivering a finished job's response.
struct Server::Connection {
  explicit Connection(int fd) : fd(fd) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  void write_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(write_mutex);
    if (!open) return;
    if (!write_all(fd, line + "\n")) open = false;
  }

  /// Unblocks the reader and makes further writes no-ops; the fd itself
  /// is closed by the destructor, once the last in-flight job reply
  /// holding a reference has been delivered (or dropped).
  void shut() {
    std::lock_guard<std::mutex> lock(write_mutex);
    open = false;
    ::shutdown(fd, SHUT_RDWR);
  }

  const int fd;
  std::mutex write_mutex;
  bool open = true;
};

Server::Server(ServerConfig config)
    : config_(std::move(config)), service_(config_.service) {}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message + ": " + std::strerror(errno);
    for (const int fd : listen_fds_) ::close(fd);
    listen_fds_.clear();
    return false;
  };

  if (!config_.unix_path.empty()) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return fail("socket(AF_UNIX)");
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    if (config_.unix_path.size() >= sizeof(address.sun_path)) {
      ::close(fd);
      if (error != nullptr) *error = "unix socket path too long";
      return false;
    }
    std::strncpy(address.sun_path, config_.unix_path.c_str(),
                 sizeof(address.sun_path) - 1);
    ::unlink(config_.unix_path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&address),
               sizeof(address)) < 0 ||
        ::listen(fd, 64) < 0) {
      ::close(fd);
      return fail("bind/listen(" + config_.unix_path + ")");
    }
    listen_fds_.push_back(fd);
  }

  if (config_.tcp) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return fail("socket(AF_INET)");
    const int reuse = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    address.sin_port = htons(static_cast<std::uint16_t>(config_.tcp_port));
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&address),
               sizeof(address)) < 0 ||
        ::listen(fd, 64) < 0) {
      ::close(fd);
      return fail("bind/listen(tcp)");
    }
    sockaddr_in bound{};
    socklen_t length = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &length) ==
        0) {
      tcp_port_ = static_cast<int>(ntohs(bound.sin_port));
    }
    listen_fds_.push_back(fd);
  }

  if (listen_fds_.empty()) {
    if (error != nullptr) *error = "no listener configured";
    return false;
  }
  for (const int fd : listen_fds_) {
    accept_threads_.emplace_back([this, fd] { accept_loop(fd); });
  }
  return true;
}

void Server::accept_loop(int listen_fd) {
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stop()
    }
    auto connection = std::make_shared<Connection>(fd);
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_requested_) return;  // raced with stop(); dtor closes fd
    connections_.push_back(connection);
    connection_threads_.emplace_back(
        [this, connection] { handle_connection(connection); });
  }
}

void Server::handle_connection(std::shared_ptr<Connection> connection) {
  std::string buffer;
  bool discarding = false;  // inside an oversized line, until its newline
  char chunk[65536];
  const auto reject_oversized = [&] {
    Json reply = Json::object();
    reply.set("schema_version", kSchemaVersion);
    reply.set("op", "error");
    reply.set("ok", false);
    Json detail = Json::object();
    detail.set("code", "oversized_line");
    detail.set("message",
               "line exceeds " +
                   std::to_string(config_.max_line_bytes) + " bytes");
    reply.set("error", std::move(detail));
    connection->write_line(reply.dump());
    buffer.clear();
  };
  while (true) {
    const ssize_t n = ::read(connection->fd, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    std::size_t start = 0;
    const std::string_view data(chunk, static_cast<std::size_t>(n));
    while (start < data.size()) {
      const std::size_t newline = data.find('\n', start);
      if (newline == std::string_view::npos) {
        if (!discarding) buffer.append(data.substr(start));
        break;
      }
      if (!discarding) {
        buffer.append(data.substr(start, newline - start));
        if (!buffer.empty() && buffer.back() == '\r') buffer.pop_back();
        if (buffer.size() > config_.max_line_bytes) {
          reject_oversized();
        } else if (!buffer.empty()) {
          handle_line(connection, buffer);
        }
        buffer.clear();
      }
      discarding = false;
      start = newline + 1;
    }
    // A partial line already past the limit: reject now and swallow input
    // until its terminating newline instead of buffering without bound.
    if (!discarding && buffer.size() > config_.max_line_bytes) {
      reject_oversized();
      discarding = true;
    }
  }
  connection->shut();
}

void Server::handle_line(const std::shared_ptr<Connection>& connection,
                         const std::string& line) {
  auto error_reply = [&](const std::string& id, const std::string& code,
                         const std::string& message) {
    Json reply = Json::object();
    reply.set("schema_version", kSchemaVersion);
    reply.set("op", "error");
    reply.set("ok", false);
    if (!id.empty()) reply.set("id", id);
    Json detail = Json::object();
    detail.set("code", code);
    detail.set("message", message);
    reply.set("error", std::move(detail));
    connection->write_line(reply.dump());
  };

  Json envelope;
  std::string parse_error;
  if (!Json::parse(line, &envelope, &parse_error) ||
      !envelope.is_object()) {
    error_reply("", "malformed_json",
                parse_error.empty() ? "document is not an object"
                                    : parse_error);
    return;
  }
  const std::string id = envelope.get("id").as_string("");
  const Json& version = envelope.get("schema_version");
  if (!version.is_int() || version.as_int() < 1 ||
      version.as_int() > kSchemaVersion) {
    error_reply(id, "unsupported_version",
                "envelope schema_version must be 1.." +
                    std::to_string(kSchemaVersion));
    return;
  }
  const std::string op = envelope.get("op").as_string("");

  if (op == "synthesize") {
    core::SynthesisRequest request;
    std::string wire_error;
    if (!request_from_json(envelope.get("request"), &request,
                           &wire_error)) {
      error_reply(id, "bad_request", wire_error);
      return;
    }
    JobInfo info;
    info.id = id;
    info.priority = static_cast<int>(envelope.get("priority").as_int(0));
    info.deadline_seconds =
        static_cast<double>(envelope.get("deadline_ms").as_int(0)) / 1000.0;
    info.warm = envelope.get("warm").as_bool(true);
    std::string admit_error;
    const bool admitted = service_.submit(
        info, std::move(request),
        [connection, id](const ServiceReply& reply) {
          Json out = Json::object();
          out.set("schema_version", kSchemaVersion);
          out.set("op", "response");
          if (!id.empty()) out.set("id", id);
          if (reply.ok()) {
            out.set("ok", true);
            out.set("response", response_to_json(reply.response));
            Json info_json = Json::object();
            info_json.set("request_id",
                          static_cast<long long>(reply.request_id));
            info_json.set("warm", reply.warm);
            info_json.set("expired", reply.expired);
            info_json.set("cancelled", reply.cancelled);
            info_json.set("market", [&] {
              char buffer[32];
              std::snprintf(buffer, sizeof buffer, "0x%016llx",
                            static_cast<unsigned long long>(reply.market));
              return std::string(buffer);
            }());
            info_json.set("queue_ms", reply.queue_seconds * 1000.0);
            info_json.set("solve_ms", reply.solve_seconds * 1000.0);
            out.set("service", std::move(info_json));
          } else {
            out.set("op", "error");
            out.set("ok", false);
            Json detail = Json::object();
            detail.set("code", reply.error);
            detail.set("message", "request dropped: " + reply.error);
            out.set("error", std::move(detail));
          }
          connection->write_line(out.dump());
        },
        &admit_error);
    if (!admitted) {
      error_reply(id, admit_error,
                  admit_error == "queue_full"
                      ? "admission queue is at capacity; retry later"
                      : "service is shutting down");
    }
    return;
  }
  if (op == "cancel") {
    const bool cancelled = service_.cancel(id);
    Json reply = Json::object();
    reply.set("schema_version", kSchemaVersion);
    reply.set("op", "cancel_ack");
    reply.set("ok", true);
    if (!id.empty()) reply.set("id", id);
    reply.set("cancelled", cancelled);
    connection->write_line(reply.dump());
    return;
  }
  if (op == "stats") {
    Json reply = Json::object();
    reply.set("schema_version", kSchemaVersion);
    reply.set("op", "stats");
    reply.set("ok", true);
    reply.set("stats", service_.stats());
    connection->write_line(reply.dump());
    return;
  }
  if (op == "telemetry") {
    Json reply = Json::object();
    reply.set("schema_version", kSchemaVersion);
    reply.set("op", "telemetry");
    reply.set("ok", true);
    reply.set("content_type", "text/plain; version=0.0.4");
    reply.set("text", service_.telemetry());
    connection->write_line(reply.dump());
    return;
  }
  if (op == "ping") {
    Json reply = Json::object();
    reply.set("schema_version", kSchemaVersion);
    reply.set("op", "pong");
    reply.set("ok", true);
    connection->write_line(reply.dump());
    return;
  }
  if (op == "shutdown") {
    Json reply = Json::object();
    reply.set("schema_version", kSchemaVersion);
    reply.set("op", "shutdown_ack");
    reply.set("ok", true);
    connection->write_line(reply.dump());
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
    stop_cv_.notify_all();
    return;
  }
  error_reply(id, "unknown_op", "unknown op '" + op + "'");
}

void Server::request_stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  stop_requested_ = true;
  stop_cv_.notify_all();
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  stop_cv_.wait(lock, [&] { return stop_requested_ || stopped_; });
}

void Server::stop() {
  std::vector<int> listeners;
  std::vector<std::weak_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
    stop_requested_ = true;
    stop_cv_.notify_all();
    listeners.swap(listen_fds_);
    connections.swap(connections_);
  }
  for (const int fd : listeners) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  for (std::thread& thread : accept_threads_) thread.join();
  for (const std::weak_ptr<Connection>& weak : connections) {
    if (const std::shared_ptr<Connection> connection = weak.lock()) {
      connection->shut();
    }
  }
  for (std::thread& thread : connection_threads_) thread.join();
  service_.shutdown();
  if (!config_.unix_path.empty()) ::unlink(config_.unix_path.c_str());
}

}  // namespace ht::service
