// Admission-controlled priority queue for the synthesis service.
//
// Bounded by construction: push() refuses (returns false) when the queue
// is at capacity instead of growing — that refusal IS the backpressure
// signal thlsd turns into a structured `queue_full` error, so a burst of
// clients degrades into fast rejections rather than unbounded memory and
// silently-missed deadlines. Jobs are ordered by (higher priority,
// earlier deadline, admission order); a job with no deadline sorts after
// every deadlined job of its priority. pop() blocks until a job or
// close(); after close() it refuses immediately and the still-queued jobs
// are returned by drain() so the service can answer their clients instead
// of dropping them on the floor.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "util/thread_pool.hpp"

namespace ht::service {

/// Service-level envelope of one request: everything about a job that is
/// not the SynthesisRequest itself.
struct JobInfo {
  /// Client-chosen identifier; target of cancel(). May be empty.
  std::string id;
  /// Higher runs first. Ties broken by deadline, then admission order.
  int priority = 0;
  /// Wall-clock budget measured from admission; expired jobs complete as
  /// kUnknown without solving. <= 0 means no deadline.
  double deadline_seconds = 0.0;
  /// False forces a cold engine (fresh caches) for this job — the A/B
  /// lever the determinism-under-reuse tests use.
  bool warm = true;
};

/// One admitted job.
struct PendingJob {
  std::uint64_t ticket = 0;  ///< admission sequence number (unique)
  JobInfo info;
  core::SynthesisRequest request;
  std::chrono::steady_clock::time_point admitted{};
  /// Meaningful iff info.deadline_seconds > 0.
  std::chrono::steady_clock::time_point deadline{};
  /// The job's cooperative stop signal; shared with the cancel registry.
  std::shared_ptr<util::CancelToken> cancel;

  bool has_deadline() const { return info.deadline_seconds > 0.0; }
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity);

  /// Admits the job unless the queue is full or closed.
  bool push(PendingJob job);

  /// Blocks for the highest-priority job. False once close() was called
  /// (immediately — remaining jobs are left for drain()).
  bool pop(PendingJob* out);

  /// Removes a still-queued job by ticket (cancellation before dispatch).
  bool remove(std::uint64_t ticket, PendingJob* out);

  void close();
  bool closed() const;

  /// Everything still queued, in pop order. Call after close().
  std::vector<PendingJob> drain();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  /// True when `a` should run before `b`.
  static bool before(const PendingJob& a, const PendingJob& b);

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::vector<PendingJob> jobs_;  // kept sorted in pop order; small by design
  bool closed_ = false;
};

}  // namespace ht::service
