// JSON-lines socket front end for SynthesisService — the thlsd protocol.
//
// Transport: a Unix-domain socket and/or a loopback TCP socket (port 0 =
// kernel-assigned, reported by tcp_port() — the test harness shape). One
// thread per connection; one JSON document per '\n'-terminated line in
// both directions. Requests on one connection may pipeline: each
// synthesize reply is written when its job finishes (tagged with the
// client's id), so a slow solve does not block a cancel or /stats sent on
// the same connection.
//
// Envelopes. Client → server: {"schema_version":1,"op":<string>,...} with
//   op "synthesize": "request" = wire.hpp request document; optional "id",
//     "priority", "deadline_ms", "warm".
//   op "cancel": "id" names the job to cancel.
//   op "stats" | "ping" | "shutdown".
//   op "telemetry": Prometheus text exposition; the reply carries the
//     body in "text" plus "content_type" = "text/plain; version=0.0.4".
// Server → client: {"schema_version":1,"op":"response"|"stats"|
// "telemetry"|"pong"|
// "cancel_ack"|"shutdown_ack"|"error","ok":bool,...}; failures carry
// {"error":{"code","message"}} with codes "malformed_json",
// "oversized_line", "unsupported_version", "bad_request", "unknown_op",
// "queue_full", "shutdown". A malformed or oversized line is answered
// with a structured error and the connection stays up.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/service.hpp"

namespace ht::service {

struct ServerConfig {
  /// Path for the Unix-domain listener; empty disables it. A stale socket
  /// file at the path is removed on start.
  std::string unix_path;
  /// Enable the 127.0.0.1 TCP listener; port 0 binds an ephemeral port.
  bool tcp = false;
  int tcp_port = 0;
  /// Lines beyond this limit are rejected with "oversized_line" and the
  /// rest of the offending line is discarded.
  std::size_t max_line_bytes = 4u << 20;
  ServiceConfig service;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and starts the accept loops. False (with `error`) when no
  /// listener could be created.
  bool start(std::string* error);

  /// Blocks until stop() is called or a client sends op "shutdown".
  void wait();

  /// Wakes wait() without tearing anything down (signal-watcher shape:
  /// the waiter then calls stop() from a normal thread context).
  void request_stop();

  /// Closes listeners and connections, then drains the service. Safe to
  /// call from any thread (including a connection handler) and twice.
  void stop();

  /// The TCP port actually bound (after start), or -1.
  int tcp_port() const { return tcp_port_; }
  const std::string& unix_path() const { return config_.unix_path; }

  SynthesisService& service() { return service_; }

 private:
  struct Connection;

  void accept_loop(int listen_fd);
  void handle_connection(std::shared_ptr<Connection> connection);
  void handle_line(const std::shared_ptr<Connection>& connection,
                   const std::string& line);

  ServerConfig config_;
  SynthesisService service_;

  std::mutex mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  bool stopped_ = false;
  std::vector<int> listen_fds_;
  std::vector<std::thread> accept_threads_;
  std::vector<std::thread> connection_threads_;
  std::vector<std::weak_ptr<Connection>> connections_;
  int tcp_port_ = -1;
};

}  // namespace ht::service
