// Minimal JSON document model for the service wire format.
//
// The wire layer (service/wire.hpp) needs a full two-way JSON DOM —
// tolerant reads of unknown fields, deterministic writes — which the
// purpose-built serializers elsewhere in the tree (obs::to_json, the
// Chrome trace writer) do not provide. This is a deliberately small
// implementation: UTF-8 pass-through strings with \uXXXX escapes decoded
// to UTF-8 on parse, numbers kept as long long when they are integral
// (license costs and node counters must round-trip exactly), objects
// stored key-sorted so dump() is byte-stable for identical documents.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ht::service {

/// One JSON value. Cheap to copy for the document sizes the wire carries
/// (requests are a few kilobytes; responses top out at a frontier sweep).
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() = default;
  Json(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Json(bool value) : type_(Type::kBool), bool_(value) {}  // NOLINT
  Json(int value) : type_(Type::kInt), int_(value) {}     // NOLINT
  Json(long value) : type_(Type::kInt), int_(value) {}    // NOLINT
  Json(long long value) : type_(Type::kInt), int_(value) {}          // NOLINT
  Json(unsigned long long value)                                     // NOLINT
      : type_(Type::kInt), int_(static_cast<long long>(value)) {}
  Json(double value) : type_(Type::kDouble), double_(value) {}  // NOLINT
  Json(std::string value)                                       // NOLINT
      : type_(Type::kString), string_(std::move(value)) {}
  Json(const char* value) : Json(std::string(value)) {}  // NOLINT

  static Json array() {
    Json json;
    json.type_ = Type::kArray;
    return json;
  }
  static Json object() {
    Json json;
    json.type_ = Type::kObject;
    return json;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed reads with a fallback — the unknown-field-tolerant idiom is
  /// `json.get("key").as_int(default)`.
  bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  long long as_int(long long fallback = 0) const {
    if (type_ == Type::kInt) return int_;
    if (type_ == Type::kDouble) return static_cast<long long>(double_);
    return fallback;
  }
  double as_double(double fallback = 0.0) const {
    if (type_ == Type::kDouble) return double_;
    if (type_ == Type::kInt) return static_cast<double>(int_);
    return fallback;
  }
  const std::string& as_string() const;
  std::string as_string(const std::string& fallback) const {
    return is_string() ? string_ : fallback;
  }

  // ---- arrays ----------------------------------------------------------
  const std::vector<Json>& items() const { return array_; }
  std::size_t size() const {
    return is_array() ? array_.size() : is_object() ? object_.size() : 0;
  }
  void push_back(Json value);
  const Json& at(std::size_t index) const;

  // ---- objects ---------------------------------------------------------
  const std::map<std::string, Json>& fields() const { return object_; }
  bool has(const std::string& key) const {
    return is_object() && object_.count(key) > 0;
  }
  /// Null reference when absent (or when this is not an object) — chains
  /// safely: `doc.get("a").get("b").as_int(0)`.
  const Json& get(const std::string& key) const;
  /// Converts a null value to an object on first insertion.
  Json& set(const std::string& key, Json value);

  /// Compact deterministic serialization (sorted keys, no whitespace).
  std::string dump() const;

  /// Strict parse of one complete JSON document. Returns false and fills
  /// `error` (with a byte offset) on malformed input; `out` is untouched
  /// on failure. Trailing whitespace is allowed, trailing garbage is not.
  static bool parse(std::string_view text, Json* out, std::string* error);

  bool operator==(const Json&) const = default;

 private:
  void dump_to(std::string* out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  long long int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

/// JSON string escaping of `text` including the surrounding quotes.
std::string json_quote(std::string_view text);

}  // namespace ht::service
