// SynthesisService — the daemon's heart, protocol-free and fully testable
// in-process.
//
// A fixed pool of worker threads pops jobs off the bounded AdmissionQueue
// and runs each on a pooled SynthesisEngine selected by the request's
// *vendor market*: spec_family_fingerprint(spec) keys a map of market
// groups, each holding a bounded engine pool plus one published
// WarmSnapshot (core/warm_state.hpp) under an RCU-style pointer swap.
// Same-market requests run CONCURRENTLY: a worker grabs the current
// snapshot and an idle engine under the group mutex, adopts the snapshot,
// solves with no lock held, then folds its surviving delta into the next
// snapshot with a short merge_warm() under the lock. Warm reuse may only
// change *speed*: statuses, costs and bindings are bit-identical to a cold
// engine within equal budgets (DESIGN.md §5 has the argument and the
// budget-truncation caveat); `JobInfo::warm = false` forces a throwaway
// engine for A/B runs.
//
// Deadlines clamp the request's wall-clock budget to the time remaining at
// dispatch; a job that is already past its deadline when a worker reaches
// it completes as kUnknown with its queue-wait recorded and no solve.
// Cancellation is cooperative: cancel(id) trips the job's CancelToken,
// which the engine polls between license sets and inside the CSP node
// loop. stats() exports the service counters, the per-market warm-state
// ledger, and the merged obs::SolveMetrics of every metrics-enabled
// request — the /stats endpoint serves it verbatim.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/warm_state.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/journal.hpp"
#include "obs/telemetry.hpp"
#include "service/queue.hpp"
#include "service/wire.hpp"

namespace ht::service {

struct ServiceConfig {
  /// Concurrent solves; also the number of worker threads.
  int workers = 2;
  /// Bounded admission queue depth (excluding the jobs being solved).
  std::size_t queue_capacity = 32;
  /// Warm engines per market group: same-market requests beyond this many
  /// block until an engine frees. 0 = match `workers`; 1 reproduces the
  /// pre-snapshot fully-serialized behavior (the throughput A/B baseline).
  int engine_pool = 0;
  /// Request-lifecycle journal (thlsd --journal). Not owned; must outlive
  /// the service. nullptr = journaling off (the default; no cost).
  obs::RequestJournal* journal = nullptr;
  /// Flight recorder for anomaly dumps (thlsd --flight-dir). Not owned;
  /// must outlive the service. nullptr = off.
  obs::FlightRecorder* flight = nullptr;
};

/// Outcome of one job, delivered to the submitter's callback.
struct ServiceReply {
  /// Non-empty on service-level failure ("queue_full", "shutdown").
  std::string error;
  /// Monotonic request id minted at admission (the queue ticket) — the
  /// key every journal line, trace span, and flight-recorder dump of this
  /// request carries. 0 only when admission itself failed.
  std::uint64_t request_id = 0;
  core::SynthesisResponse response;
  bool expired = false;    ///< deadline passed; result.status is kUnknown
  bool cancelled = false;  ///< token was tripped (solve may be partial)
  bool warm = true;        ///< served by the market group's warm engine
  std::uint64_t market = 0;  ///< spec_family_fingerprint of the request
  double queue_seconds = 0.0;
  double solve_seconds = 0.0;

  bool ok() const { return error.empty(); }
};

using ReplyFn = std::function<void(const ServiceReply&)>;

class SynthesisService {
 public:
  explicit SynthesisService(const ServiceConfig& config);
  ~SynthesisService();

  SynthesisService(const SynthesisService&) = delete;
  SynthesisService& operator=(const SynthesisService&) = delete;

  /// Admission. Returns false with `error` = "queue_full" (bounded queue at
  /// capacity — the backpressure signal) or "shutdown". On success `done`
  /// fires exactly once, from a worker thread.
  bool submit(const JobInfo& info, core::SynthesisRequest request,
              ReplyFn done, std::string* error);

  /// Synchronous convenience: submit + wait. Admission failures come back
  /// as a reply with `error` set.
  ServiceReply execute(const JobInfo& info, core::SynthesisRequest request);

  /// Trips the CancelToken of the named job (queued or mid-solve). False
  /// when no live job has this id.
  bool cancel(const std::string& id);

  /// Counters + per-market warm-state ledger + latency percentiles +
  /// merged SolveMetrics.
  Json stats() const;

  /// Prometheus text-exposition snapshot (version 0.0.4): request
  /// counters, queue-depth gauge, cumulative latency histograms, rolling
  /// percentile gauges, per-market counters, and journal/flight-recorder
  /// health when attached. Each call increments
  /// thlsd_telemetry_scrapes_total, so two scrapes are always
  /// distinguishable (the CI monotonicity probe).
  std::string telemetry() const;

  /// The published warm snapshot of every market that has one — what
  /// `thlsd --warm-dir` persists at shutdown/checkpoint.
  std::vector<core::WarmSnapshotPtr> export_warm() const;

  /// Installs `snapshot` as the published warm state of its market,
  /// pre-seeding the group (a restored daemon serves its first same-market
  /// request warm). Later request deltas merge on top; an incompatible
  /// spec family simply replaces it via the usual merge rules.
  void import_warm(core::WarmSnapshotPtr snapshot);

  /// Stops admission, joins workers, and answers still-queued jobs with a
  /// "shutdown" reply. Idempotent; the destructor calls it.
  void shutdown();

 private:
  /// Per-vendor-market warm state: a bounded pool of engines sharing one
  /// published immutable snapshot. `mutex` guards only the pool fields and
  /// the snapshot pointer — never a solve.
  struct MarketGroup {
    std::mutex mutex;
    std::condition_variable pool_cv;  ///< signalled when an engine frees
    /// Published warm state (refcounted, immutable). Swapped by merge_warm
    /// after each completed request; readers keep their adopted copy alive.
    core::WarmSnapshotPtr snapshot;
    /// Engines not currently solving. Engines carry no private warm state
    /// between requests — everything flows through `snapshot` — so any
    /// idle engine is as good as any other.
    std::vector<std::unique_ptr<core::SynthesisEngine>> idle;
    int engines_built = 0;  ///< total engines constructed (≤ pool cap)
    int active = 0;         ///< engines currently solving
    int max_active = 0;     ///< concurrency high-water mark (stats)
    std::uint64_t merges = 0;  ///< deltas folded into the snapshot
    // Ledger (guarded by the service mutex, not the group mutex):
    long requests = 0;
    /// Requests that collected per-stage metrics — the only ones feeding
    /// metered_csp_ns/metered_nodes, so stats() can report how much of
    /// `requests` the derived nodes/sec actually covers.
    long metered_requests = 0;
    long long nodes_total = 0;
    long long combos_tried = 0;
    long long combos_skipped_cache = 0;
    long long lb_prunes = 0;
    long long nogoods_learned = 0;
    /// Portfolio incumbents published by this group's requests (zero until
    /// a request runs with PortfolioOptions::enabled).
    long long incumbents_published = 0;
    /// Wall seconds this group's engine spent inside run(), and the
    /// csp_dispatch stage nanoseconds of requests that collected metrics
    /// (with the nodes those requests ran, so the derived ns/node uses a
    /// consistent denominator). stats() derives nodes/sec from these — the
    /// operator-visible form of the solver's node throughput.
    double engine_seconds = 0.0;
    long long metered_csp_ns = 0;
    long long metered_nodes = 0;
    // Same counters for the most recent request — the warm-state win is
    // directly visible as last_* improving on the first request.
    long long last_nodes_total = 0;
    long long last_combos_tried = 0;
    long long last_combos_skipped_cache = 0;
    long long last_lb_prunes = 0;
  };

  void worker_loop(int lane);
  void run_job(PendingJob job, int lane);
  void finish(const PendingJob& job, const ServiceReply& reply);
  MarketGroup* group_for(std::uint64_t fingerprint);
  int engine_pool_cap() const;
  /// Appends to the journal when one is attached; no-op otherwise.
  void journal_event(const obs::JournalEvent& event);

  const ServiceConfig config_;
  AdmissionQueue queue_;

  mutable std::mutex mutex_;  // guards everything below
  std::map<std::uint64_t, std::unique_ptr<MarketGroup>> groups_;
  std::map<std::string, std::shared_ptr<util::CancelToken>> live_;
  std::map<std::uint64_t, ReplyFn> callbacks_;  // by ticket
  std::uint64_t next_ticket_ = 1;
  bool stopped_ = false;
  // Counters:
  long long submitted_ = 0;
  long long rejected_ = 0;
  long long completed_ = 0;
  long long cancelled_ = 0;
  long long expired_ = 0;
  /// Sliding window of per-reply {queue wait, end-to-end} seconds feeding
  /// the stats() latency percentiles; bounded so a long-lived daemon's
  /// stats reflect recent behavior, not its whole life.
  static constexpr std::size_t kLatencyWindow = 4096;
  std::vector<std::pair<double, double>> latency_samples_;
  std::size_t latency_next_ = 0;
  obs::SolveMetrics metrics_;  // merged across metrics-enabled requests
  /// Cumulative (never-reset) latency histograms feeding telemetry() —
  /// Prometheus histograms must be monotonic, unlike the sliding window
  /// above. Durations recorded in nanoseconds (StageStats convention).
  obs::StageStats e2e_hist_;
  obs::StageStats queue_hist_;
  mutable long long telemetry_scrapes_ = 0;

  std::vector<std::thread> workers_;
};

}  // namespace ht::service
