// SynthesisService — the daemon's heart, protocol-free and fully testable
// in-process.
//
// A fixed pool of worker threads pops jobs off the bounded AdmissionQueue
// and runs each on a long-lived SynthesisEngine selected by the request's
// *vendor market*: spec_family_fingerprint(spec) keys a map of market
// groups, each owning one engine plus a mutex. Same-market requests
// serialize on the group mutex — which is exactly what lets the second
// request reuse the first one's frozen SearchCache tiers, nogood store and
// LP-bound memos — while requests for different markets run concurrently
// on separate engines. Warm reuse may only change *speed*: statuses, costs
// and bindings are bit-identical to a cold engine within equal budgets
// (DESIGN.md §5 has the argument and the budget-truncation caveat);
// `JobInfo::warm = false` forces a throwaway engine for A/B runs.
//
// Deadlines clamp the request's wall-clock budget to the time remaining at
// dispatch; a job that is already past its deadline when a worker reaches
// it completes as kUnknown with its queue-wait recorded and no solve.
// Cancellation is cooperative: cancel(id) trips the job's CancelToken,
// which the engine polls between license sets and inside the CSP node
// loop. stats() exports the service counters, the per-market warm-state
// ledger, and the merged obs::SolveMetrics of every metrics-enabled
// request — the /stats endpoint serves it verbatim.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/queue.hpp"
#include "service/wire.hpp"

namespace ht::service {

struct ServiceConfig {
  /// Concurrent solves; also the number of worker threads.
  int workers = 2;
  /// Bounded admission queue depth (excluding the jobs being solved).
  std::size_t queue_capacity = 32;
};

/// Outcome of one job, delivered to the submitter's callback.
struct ServiceReply {
  /// Non-empty on service-level failure ("queue_full", "shutdown").
  std::string error;
  core::SynthesisResponse response;
  bool expired = false;    ///< deadline passed; result.status is kUnknown
  bool cancelled = false;  ///< token was tripped (solve may be partial)
  bool warm = true;        ///< served by the market group's warm engine
  std::uint64_t market = 0;  ///< spec_family_fingerprint of the request
  double queue_seconds = 0.0;
  double solve_seconds = 0.0;

  bool ok() const { return error.empty(); }
};

using ReplyFn = std::function<void(const ServiceReply&)>;

class SynthesisService {
 public:
  explicit SynthesisService(const ServiceConfig& config);
  ~SynthesisService();

  SynthesisService(const SynthesisService&) = delete;
  SynthesisService& operator=(const SynthesisService&) = delete;

  /// Admission. Returns false with `error` = "queue_full" (bounded queue at
  /// capacity — the backpressure signal) or "shutdown". On success `done`
  /// fires exactly once, from a worker thread.
  bool submit(const JobInfo& info, core::SynthesisRequest request,
              ReplyFn done, std::string* error);

  /// Synchronous convenience: submit + wait. Admission failures come back
  /// as a reply with `error` set.
  ServiceReply execute(const JobInfo& info, core::SynthesisRequest request);

  /// Trips the CancelToken of the named job (queued or mid-solve). False
  /// when no live job has this id.
  bool cancel(const std::string& id);

  /// Counters + per-market warm-state ledger + merged SolveMetrics.
  Json stats() const;

  /// Stops admission, joins workers, and answers still-queued jobs with a
  /// "shutdown" reply. Idempotent; the destructor calls it.
  void shutdown();

 private:
  /// Per-vendor-market warm state: one engine, serialized by `mutex`.
  struct MarketGroup {
    std::mutex mutex;
    core::SynthesisEngine engine;
    // Ledger (guarded by the service mutex, not the group mutex):
    long requests = 0;
    long long nodes_total = 0;
    long long combos_tried = 0;
    long long combos_skipped_cache = 0;
    long long lb_prunes = 0;
    long long nogoods_learned = 0;
    /// Portfolio incumbents published by this group's requests (zero until
    /// a request runs with PortfolioOptions::enabled).
    long long incumbents_published = 0;
    /// Wall seconds this group's engine spent inside run(), and the
    /// csp_dispatch stage nanoseconds of requests that collected metrics
    /// (with the nodes those requests ran, so the derived ns/node uses a
    /// consistent denominator). stats() derives nodes/sec from these — the
    /// operator-visible form of the solver's node throughput.
    double engine_seconds = 0.0;
    long long metered_csp_ns = 0;
    long long metered_nodes = 0;
    // Same counters for the most recent request — the warm-state win is
    // directly visible as last_* improving on the first request.
    long long last_nodes_total = 0;
    long long last_combos_tried = 0;
    long long last_combos_skipped_cache = 0;
    long long last_lb_prunes = 0;
  };

  void worker_loop();
  void run_job(PendingJob job);
  void finish(const PendingJob& job, const ServiceReply& reply);
  MarketGroup* group_for(std::uint64_t fingerprint);

  const ServiceConfig config_;
  AdmissionQueue queue_;

  mutable std::mutex mutex_;  // guards everything below
  std::map<std::uint64_t, std::unique_ptr<MarketGroup>> groups_;
  std::map<std::string, std::shared_ptr<util::CancelToken>> live_;
  std::map<std::uint64_t, ReplyFn> callbacks_;  // by ticket
  std::uint64_t next_ticket_ = 1;
  bool stopped_ = false;
  // Counters:
  long long submitted_ = 0;
  long long rejected_ = 0;
  long long completed_ = 0;
  long long cancelled_ = 0;
  long long expired_ = 0;
  obs::SolveMetrics metrics_;  // merged across metrics-enabled requests

  std::vector<std::thread> workers_;
};

}  // namespace ht::service
