file(REMOVE_RECURSE
  "CMakeFiles/multicycle_test.dir/multicycle_test.cpp.o"
  "CMakeFiles/multicycle_test.dir/multicycle_test.cpp.o.d"
  "multicycle_test"
  "multicycle_test.pdb"
  "multicycle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicycle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
