# Empty compiler generated dependencies file for multicycle_test.
# This may be replaced when dependencies are built.
