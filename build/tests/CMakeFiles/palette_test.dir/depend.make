# Empty dependencies file for palette_test.
# This may be replaced when dependencies are built.
