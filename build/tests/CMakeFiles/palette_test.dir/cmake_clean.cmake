file(REMOVE_RECURSE
  "CMakeFiles/palette_test.dir/palette_test.cpp.o"
  "CMakeFiles/palette_test.dir/palette_test.cpp.o.d"
  "palette_test"
  "palette_test.pdb"
  "palette_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/palette_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
