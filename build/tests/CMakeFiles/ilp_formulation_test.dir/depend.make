# Empty dependencies file for ilp_formulation_test.
# This may be replaced when dependencies are built.
