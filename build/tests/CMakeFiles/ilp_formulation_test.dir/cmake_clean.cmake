file(REMOVE_RECURSE
  "CMakeFiles/ilp_formulation_test.dir/ilp_formulation_test.cpp.o"
  "CMakeFiles/ilp_formulation_test.dir/ilp_formulation_test.cpp.o.d"
  "ilp_formulation_test"
  "ilp_formulation_test.pdb"
  "ilp_formulation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_formulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
