file(REMOVE_RECURSE
  "CMakeFiles/reoptimize_test.dir/reoptimize_test.cpp.o"
  "CMakeFiles/reoptimize_test.dir/reoptimize_test.cpp.o.d"
  "reoptimize_test"
  "reoptimize_test.pdb"
  "reoptimize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reoptimize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
