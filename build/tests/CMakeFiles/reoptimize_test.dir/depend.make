# Empty dependencies file for reoptimize_test.
# This may be replaced when dependencies are built.
