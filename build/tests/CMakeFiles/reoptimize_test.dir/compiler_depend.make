# Empty compiler generated dependencies file for reoptimize_test.
# This may be replaced when dependencies are built.
