
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/parse_test.cpp" "tests/CMakeFiles/parse_test.dir/parse_test.cpp.o" "gcc" "tests/CMakeFiles/parse_test.dir/parse_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ht_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/ht_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/vendor/CMakeFiles/ht_vendor.dir/DependInfo.cmake"
  "/root/repo/build/src/benchmarks/CMakeFiles/ht_benchmarks.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/ht_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/ht_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ht_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trojan/CMakeFiles/ht_trojan.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/ht_rtl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
