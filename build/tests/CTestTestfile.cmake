# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/dfg_test[1]_include.cmake")
include("/root/repo/build/tests/parse_test[1]_include.cmake")
include("/root/repo/build/tests/vendor_test[1]_include.cmake")
include("/root/repo/build/tests/benchmarks_test[1]_include.cmake")
include("/root/repo/build/tests/lp_test[1]_include.cmake")
include("/root/repo/build/tests/ilp_test[1]_include.cmake")
include("/root/repo/build/tests/rules_test[1]_include.cmake")
include("/root/repo/build/tests/solution_test[1]_include.cmake")
include("/root/repo/build/tests/csp_test[1]_include.cmake")
include("/root/repo/build/tests/greedy_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/reoptimize_test[1]_include.cmake")
include("/root/repo/build/tests/frontier_test[1]_include.cmake")
include("/root/repo/build/tests/ilp_formulation_test[1]_include.cmake")
include("/root/repo/build/tests/trojan_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/rtl_test[1]_include.cmake")
include("/root/repo/build/tests/rtl_sim_test[1]_include.cmake")
include("/root/repo/build/tests/palette_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_consistency_test[1]_include.cmake")
include("/root/repo/build/tests/multicycle_test[1]_include.cmake")
