file(REMOVE_RECURSE
  "CMakeFiles/thls.dir/thls.cpp.o"
  "CMakeFiles/thls.dir/thls.cpp.o.d"
  "thls"
  "thls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
