# Empty dependencies file for thls.
# This may be replaced when dependencies are built.
