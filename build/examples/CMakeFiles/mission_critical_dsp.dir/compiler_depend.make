# Empty compiler generated dependencies file for mission_critical_dsp.
# This may be replaced when dependencies are built.
