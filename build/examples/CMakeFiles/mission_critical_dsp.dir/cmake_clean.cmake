file(REMOVE_RECURSE
  "CMakeFiles/mission_critical_dsp.dir/mission_critical_dsp.cpp.o"
  "CMakeFiles/mission_critical_dsp.dir/mission_critical_dsp.cpp.o.d"
  "mission_critical_dsp"
  "mission_critical_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mission_critical_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
