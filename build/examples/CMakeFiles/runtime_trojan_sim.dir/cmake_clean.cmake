file(REMOVE_RECURSE
  "CMakeFiles/runtime_trojan_sim.dir/runtime_trojan_sim.cpp.o"
  "CMakeFiles/runtime_trojan_sim.dir/runtime_trojan_sim.cpp.o.d"
  "runtime_trojan_sim"
  "runtime_trojan_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_trojan_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
