# Empty dependencies file for runtime_trojan_sim.
# This may be replaced when dependencies are built.
