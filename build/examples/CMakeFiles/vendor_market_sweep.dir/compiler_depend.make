# Empty compiler generated dependencies file for vendor_market_sweep.
# This may be replaced when dependencies are built.
