file(REMOVE_RECURSE
  "CMakeFiles/vendor_market_sweep.dir/vendor_market_sweep.cpp.o"
  "CMakeFiles/vendor_market_sweep.dir/vendor_market_sweep.cpp.o.d"
  "vendor_market_sweep"
  "vendor_market_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vendor_market_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
