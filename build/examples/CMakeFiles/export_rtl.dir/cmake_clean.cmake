file(REMOVE_RECURSE
  "CMakeFiles/export_rtl.dir/export_rtl.cpp.o"
  "CMakeFiles/export_rtl.dir/export_rtl.cpp.o.d"
  "export_rtl"
  "export_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
