file(REMOVE_RECURSE
  "CMakeFiles/ht_ilp.dir/branch_and_bound.cpp.o"
  "CMakeFiles/ht_ilp.dir/branch_and_bound.cpp.o.d"
  "CMakeFiles/ht_ilp.dir/brute_force.cpp.o"
  "CMakeFiles/ht_ilp.dir/brute_force.cpp.o.d"
  "CMakeFiles/ht_ilp.dir/model.cpp.o"
  "CMakeFiles/ht_ilp.dir/model.cpp.o.d"
  "libht_ilp.a"
  "libht_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
