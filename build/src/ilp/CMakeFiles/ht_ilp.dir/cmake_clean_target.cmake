file(REMOVE_RECURSE
  "libht_ilp.a"
)
