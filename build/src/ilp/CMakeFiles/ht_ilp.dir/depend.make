# Empty dependencies file for ht_ilp.
# This may be replaced when dependencies are built.
