file(REMOVE_RECURSE
  "CMakeFiles/ht_core.dir/csp_solver.cpp.o"
  "CMakeFiles/ht_core.dir/csp_solver.cpp.o.d"
  "CMakeFiles/ht_core.dir/frontier.cpp.o"
  "CMakeFiles/ht_core.dir/frontier.cpp.o.d"
  "CMakeFiles/ht_core.dir/greedy.cpp.o"
  "CMakeFiles/ht_core.dir/greedy.cpp.o.d"
  "CMakeFiles/ht_core.dir/ilp_formulation.cpp.o"
  "CMakeFiles/ht_core.dir/ilp_formulation.cpp.o.d"
  "CMakeFiles/ht_core.dir/optimizer.cpp.o"
  "CMakeFiles/ht_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/ht_core.dir/palette.cpp.o"
  "CMakeFiles/ht_core.dir/palette.cpp.o.d"
  "CMakeFiles/ht_core.dir/problem.cpp.o"
  "CMakeFiles/ht_core.dir/problem.cpp.o.d"
  "CMakeFiles/ht_core.dir/reoptimize.cpp.o"
  "CMakeFiles/ht_core.dir/reoptimize.cpp.o.d"
  "CMakeFiles/ht_core.dir/rules.cpp.o"
  "CMakeFiles/ht_core.dir/rules.cpp.o.d"
  "CMakeFiles/ht_core.dir/solution.cpp.o"
  "CMakeFiles/ht_core.dir/solution.cpp.o.d"
  "CMakeFiles/ht_core.dir/validate.cpp.o"
  "CMakeFiles/ht_core.dir/validate.cpp.o.d"
  "libht_core.a"
  "libht_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
