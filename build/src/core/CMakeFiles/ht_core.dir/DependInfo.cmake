
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/csp_solver.cpp" "src/core/CMakeFiles/ht_core.dir/csp_solver.cpp.o" "gcc" "src/core/CMakeFiles/ht_core.dir/csp_solver.cpp.o.d"
  "/root/repo/src/core/frontier.cpp" "src/core/CMakeFiles/ht_core.dir/frontier.cpp.o" "gcc" "src/core/CMakeFiles/ht_core.dir/frontier.cpp.o.d"
  "/root/repo/src/core/greedy.cpp" "src/core/CMakeFiles/ht_core.dir/greedy.cpp.o" "gcc" "src/core/CMakeFiles/ht_core.dir/greedy.cpp.o.d"
  "/root/repo/src/core/ilp_formulation.cpp" "src/core/CMakeFiles/ht_core.dir/ilp_formulation.cpp.o" "gcc" "src/core/CMakeFiles/ht_core.dir/ilp_formulation.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "src/core/CMakeFiles/ht_core.dir/optimizer.cpp.o" "gcc" "src/core/CMakeFiles/ht_core.dir/optimizer.cpp.o.d"
  "/root/repo/src/core/palette.cpp" "src/core/CMakeFiles/ht_core.dir/palette.cpp.o" "gcc" "src/core/CMakeFiles/ht_core.dir/palette.cpp.o.d"
  "/root/repo/src/core/problem.cpp" "src/core/CMakeFiles/ht_core.dir/problem.cpp.o" "gcc" "src/core/CMakeFiles/ht_core.dir/problem.cpp.o.d"
  "/root/repo/src/core/reoptimize.cpp" "src/core/CMakeFiles/ht_core.dir/reoptimize.cpp.o" "gcc" "src/core/CMakeFiles/ht_core.dir/reoptimize.cpp.o.d"
  "/root/repo/src/core/rules.cpp" "src/core/CMakeFiles/ht_core.dir/rules.cpp.o" "gcc" "src/core/CMakeFiles/ht_core.dir/rules.cpp.o.d"
  "/root/repo/src/core/solution.cpp" "src/core/CMakeFiles/ht_core.dir/solution.cpp.o" "gcc" "src/core/CMakeFiles/ht_core.dir/solution.cpp.o.d"
  "/root/repo/src/core/validate.cpp" "src/core/CMakeFiles/ht_core.dir/validate.cpp.o" "gcc" "src/core/CMakeFiles/ht_core.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ht_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/ht_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/vendor/CMakeFiles/ht_vendor.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/ht_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/ht_ilp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
