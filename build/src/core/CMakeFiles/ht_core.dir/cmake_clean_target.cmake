file(REMOVE_RECURSE
  "libht_core.a"
)
