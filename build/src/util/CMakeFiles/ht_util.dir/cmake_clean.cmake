file(REMOVE_RECURSE
  "CMakeFiles/ht_util.dir/logging.cpp.o"
  "CMakeFiles/ht_util.dir/logging.cpp.o.d"
  "CMakeFiles/ht_util.dir/rng.cpp.o"
  "CMakeFiles/ht_util.dir/rng.cpp.o.d"
  "CMakeFiles/ht_util.dir/status.cpp.o"
  "CMakeFiles/ht_util.dir/status.cpp.o.d"
  "CMakeFiles/ht_util.dir/strings.cpp.o"
  "CMakeFiles/ht_util.dir/strings.cpp.o.d"
  "CMakeFiles/ht_util.dir/table.cpp.o"
  "CMakeFiles/ht_util.dir/table.cpp.o.d"
  "libht_util.a"
  "libht_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
