file(REMOVE_RECURSE
  "libht_util.a"
)
