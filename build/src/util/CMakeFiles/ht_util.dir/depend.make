# Empty dependencies file for ht_util.
# This may be replaced when dependencies are built.
