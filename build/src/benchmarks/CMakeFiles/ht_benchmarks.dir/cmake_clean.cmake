file(REMOVE_RECURSE
  "CMakeFiles/ht_benchmarks.dir/classic.cpp.o"
  "CMakeFiles/ht_benchmarks.dir/classic.cpp.o.d"
  "CMakeFiles/ht_benchmarks.dir/extra.cpp.o"
  "CMakeFiles/ht_benchmarks.dir/extra.cpp.o.d"
  "CMakeFiles/ht_benchmarks.dir/random_dfg.cpp.o"
  "CMakeFiles/ht_benchmarks.dir/random_dfg.cpp.o.d"
  "CMakeFiles/ht_benchmarks.dir/suite.cpp.o"
  "CMakeFiles/ht_benchmarks.dir/suite.cpp.o.d"
  "libht_benchmarks.a"
  "libht_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
