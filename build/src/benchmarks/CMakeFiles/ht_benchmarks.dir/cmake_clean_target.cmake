file(REMOVE_RECURSE
  "libht_benchmarks.a"
)
