# Empty dependencies file for ht_benchmarks.
# This may be replaced when dependencies are built.
