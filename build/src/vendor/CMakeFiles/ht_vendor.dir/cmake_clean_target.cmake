file(REMOVE_RECURSE
  "libht_vendor.a"
)
