file(REMOVE_RECURSE
  "CMakeFiles/ht_vendor.dir/catalog.cpp.o"
  "CMakeFiles/ht_vendor.dir/catalog.cpp.o.d"
  "CMakeFiles/ht_vendor.dir/catalogs.cpp.o"
  "CMakeFiles/ht_vendor.dir/catalogs.cpp.o.d"
  "libht_vendor.a"
  "libht_vendor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_vendor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
