
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vendor/catalog.cpp" "src/vendor/CMakeFiles/ht_vendor.dir/catalog.cpp.o" "gcc" "src/vendor/CMakeFiles/ht_vendor.dir/catalog.cpp.o.d"
  "/root/repo/src/vendor/catalogs.cpp" "src/vendor/CMakeFiles/ht_vendor.dir/catalogs.cpp.o" "gcc" "src/vendor/CMakeFiles/ht_vendor.dir/catalogs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ht_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/ht_dfg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
