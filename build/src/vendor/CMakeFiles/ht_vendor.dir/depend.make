# Empty dependencies file for ht_vendor.
# This may be replaced when dependencies are built.
