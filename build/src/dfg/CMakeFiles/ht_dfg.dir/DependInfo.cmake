
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dfg/analysis.cpp" "src/dfg/CMakeFiles/ht_dfg.dir/analysis.cpp.o" "gcc" "src/dfg/CMakeFiles/ht_dfg.dir/analysis.cpp.o.d"
  "/root/repo/src/dfg/dfg.cpp" "src/dfg/CMakeFiles/ht_dfg.dir/dfg.cpp.o" "gcc" "src/dfg/CMakeFiles/ht_dfg.dir/dfg.cpp.o.d"
  "/root/repo/src/dfg/dot.cpp" "src/dfg/CMakeFiles/ht_dfg.dir/dot.cpp.o" "gcc" "src/dfg/CMakeFiles/ht_dfg.dir/dot.cpp.o.d"
  "/root/repo/src/dfg/parse.cpp" "src/dfg/CMakeFiles/ht_dfg.dir/parse.cpp.o" "gcc" "src/dfg/CMakeFiles/ht_dfg.dir/parse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ht_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
