file(REMOVE_RECURSE
  "libht_dfg.a"
)
