# Empty dependencies file for ht_dfg.
# This may be replaced when dependencies are built.
