file(REMOVE_RECURSE
  "CMakeFiles/ht_dfg.dir/analysis.cpp.o"
  "CMakeFiles/ht_dfg.dir/analysis.cpp.o.d"
  "CMakeFiles/ht_dfg.dir/dfg.cpp.o"
  "CMakeFiles/ht_dfg.dir/dfg.cpp.o.d"
  "CMakeFiles/ht_dfg.dir/dot.cpp.o"
  "CMakeFiles/ht_dfg.dir/dot.cpp.o.d"
  "CMakeFiles/ht_dfg.dir/parse.cpp.o"
  "CMakeFiles/ht_dfg.dir/parse.cpp.o.d"
  "libht_dfg.a"
  "libht_dfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_dfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
