
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trojan/exec.cpp" "src/trojan/CMakeFiles/ht_trojan.dir/exec.cpp.o" "gcc" "src/trojan/CMakeFiles/ht_trojan.dir/exec.cpp.o.d"
  "/root/repo/src/trojan/monte_carlo.cpp" "src/trojan/CMakeFiles/ht_trojan.dir/monte_carlo.cpp.o" "gcc" "src/trojan/CMakeFiles/ht_trojan.dir/monte_carlo.cpp.o.d"
  "/root/repo/src/trojan/profiling.cpp" "src/trojan/CMakeFiles/ht_trojan.dir/profiling.cpp.o" "gcc" "src/trojan/CMakeFiles/ht_trojan.dir/profiling.cpp.o.d"
  "/root/repo/src/trojan/simulator.cpp" "src/trojan/CMakeFiles/ht_trojan.dir/simulator.cpp.o" "gcc" "src/trojan/CMakeFiles/ht_trojan.dir/simulator.cpp.o.d"
  "/root/repo/src/trojan/trojan.cpp" "src/trojan/CMakeFiles/ht_trojan.dir/trojan.cpp.o" "gcc" "src/trojan/CMakeFiles/ht_trojan.dir/trojan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ht_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/ht_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ht_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vendor/CMakeFiles/ht_vendor.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/ht_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/ht_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
