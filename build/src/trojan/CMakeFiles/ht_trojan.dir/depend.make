# Empty dependencies file for ht_trojan.
# This may be replaced when dependencies are built.
