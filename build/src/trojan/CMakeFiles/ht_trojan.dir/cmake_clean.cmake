file(REMOVE_RECURSE
  "CMakeFiles/ht_trojan.dir/exec.cpp.o"
  "CMakeFiles/ht_trojan.dir/exec.cpp.o.d"
  "CMakeFiles/ht_trojan.dir/monte_carlo.cpp.o"
  "CMakeFiles/ht_trojan.dir/monte_carlo.cpp.o.d"
  "CMakeFiles/ht_trojan.dir/profiling.cpp.o"
  "CMakeFiles/ht_trojan.dir/profiling.cpp.o.d"
  "CMakeFiles/ht_trojan.dir/simulator.cpp.o"
  "CMakeFiles/ht_trojan.dir/simulator.cpp.o.d"
  "CMakeFiles/ht_trojan.dir/trojan.cpp.o"
  "CMakeFiles/ht_trojan.dir/trojan.cpp.o.d"
  "libht_trojan.a"
  "libht_trojan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_trojan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
