file(REMOVE_RECURSE
  "libht_trojan.a"
)
