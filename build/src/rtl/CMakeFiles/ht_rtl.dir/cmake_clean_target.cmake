file(REMOVE_RECURSE
  "libht_rtl.a"
)
