file(REMOVE_RECURSE
  "CMakeFiles/ht_rtl.dir/elaborate.cpp.o"
  "CMakeFiles/ht_rtl.dir/elaborate.cpp.o.d"
  "CMakeFiles/ht_rtl.dir/netlist.cpp.o"
  "CMakeFiles/ht_rtl.dir/netlist.cpp.o.d"
  "CMakeFiles/ht_rtl.dir/sim.cpp.o"
  "CMakeFiles/ht_rtl.dir/sim.cpp.o.d"
  "CMakeFiles/ht_rtl.dir/testbench.cpp.o"
  "CMakeFiles/ht_rtl.dir/testbench.cpp.o.d"
  "CMakeFiles/ht_rtl.dir/verilog.cpp.o"
  "CMakeFiles/ht_rtl.dir/verilog.cpp.o.d"
  "libht_rtl.a"
  "libht_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
