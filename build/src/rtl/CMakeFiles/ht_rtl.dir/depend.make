# Empty dependencies file for ht_rtl.
# This may be replaced when dependencies are built.
