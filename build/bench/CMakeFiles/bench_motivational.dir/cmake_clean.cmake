file(REMOVE_RECURSE
  "CMakeFiles/bench_motivational.dir/bench_motivational.cpp.o"
  "CMakeFiles/bench_motivational.dir/bench_motivational.cpp.o.d"
  "bench_motivational"
  "bench_motivational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_motivational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
